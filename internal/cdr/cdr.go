// Package cdr implements a binary marshalling format modelled on the CORBA
// Common Data Representation (CDR).
//
// Values are encoded big-endian ("network order") with CDR's natural
// alignment rules: every primitive of size n is aligned to an n-byte
// boundary relative to the start of the stream. Strings are encoded as a
// uint32 length followed by the raw bytes (no trailing NUL; documented
// deviation from CORBA CDR 1.x, which includes one). Sequences are a uint32
// element count followed by the elements.
//
// The package provides a stateful Encoder/Decoder pair plus an
// encapsulation helper mirroring CDR encapsulations (self-contained octet
// sequences used for service contexts and object references).
package cdr

import (
	"errors"
	"fmt"
	"math"
)

// Marshaler is implemented by types that can append themselves to an
// Encoder. It is the CDR analogue of an IDL struct's generated insertion
// operator.
type Marshaler interface {
	MarshalCDR(e *Encoder)
}

// Unmarshaler is implemented by types that can read themselves from a
// Decoder.
type Unmarshaler interface {
	UnmarshalCDR(d *Decoder) error
}

// ErrTruncated is reported when a Decoder runs out of bytes.
var ErrTruncated = errors.New("cdr: truncated stream")

// ErrTooLong is reported when a declared length exceeds the sanity limit.
var ErrTooLong = errors.New("cdr: declared length exceeds limit")

// MaxSequenceLen bounds any single decoded string/sequence length. It
// protects servers from hostile or corrupt length prefixes.
const MaxSequenceLen = 1 << 26 // 64 Mi elements

// Encoder accumulates a CDR byte stream.
//
// The zero value is ready to use. Encoders may be reused via Reset.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Reset discards the encoded bytes but keeps the underlying buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded stream. The slice aliases the Encoder's
// internal buffer and is invalidated by further writes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// align pads the stream with zero bytes to an n-byte boundary.
func (e *Encoder) align(n int) {
	for len(e.buf)%n != 0 {
		e.buf = append(e.buf, 0)
	}
}

// PutOctet appends a single byte.
func (e *Encoder) PutOctet(v byte) { e.buf = append(e.buf, v) }

// PutBool appends a boolean as one octet (0 or 1).
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutOctet(1)
	} else {
		e.PutOctet(0)
	}
}

// PutUint16 appends a 2-byte-aligned big-endian uint16.
func (e *Encoder) PutUint16(v uint16) {
	e.align(2)
	e.buf = append(e.buf, byte(v>>8), byte(v))
}

// PutUint32 appends a 4-byte-aligned big-endian uint32.
func (e *Encoder) PutUint32(v uint32) {
	e.align(4)
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// PutUint64 appends an 8-byte-aligned big-endian uint64.
func (e *Encoder) PutUint64(v uint64) {
	e.align(8)
	e.buf = append(e.buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// PutInt16 appends a 2-byte-aligned big-endian int16.
func (e *Encoder) PutInt16(v int16) { e.PutUint16(uint16(v)) }

// PutInt32 appends a 4-byte-aligned big-endian int32.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutInt64 appends an 8-byte-aligned big-endian int64.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutFloat32 appends a 4-byte-aligned IEEE-754 float32.
func (e *Encoder) PutFloat32(v float32) { e.PutUint32(math.Float32bits(v)) }

// PutFloat64 appends an 8-byte-aligned IEEE-754 float64.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutString appends a uint32 length followed by the string bytes.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// PutBytes appends a sequence<octet>: uint32 count plus raw bytes.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUint32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// PutRaw appends bytes with no length prefix and no alignment.
func (e *Encoder) PutRaw(b []byte) { e.buf = append(e.buf, b...) }

// PutFloat64Seq appends a sequence<double>.
func (e *Encoder) PutFloat64Seq(v []float64) {
	e.PutUint32(uint32(len(v)))
	for _, x := range v {
		e.PutFloat64(x)
	}
}

// PutInt32Seq appends a sequence<long>.
func (e *Encoder) PutInt32Seq(v []int32) {
	e.PutUint32(uint32(len(v)))
	for _, x := range v {
		e.PutInt32(x)
	}
}

// PutStringSeq appends a sequence<string>.
func (e *Encoder) PutStringSeq(v []string) {
	e.PutUint32(uint32(len(v)))
	for _, s := range v {
		e.PutString(s)
	}
}

// PutValue appends a Marshaler.
func (e *Encoder) PutValue(m Marshaler) { m.MarshalCDR(e) }

// Decoder consumes a CDR byte stream produced by Encoder.
//
// Decoding errors are sticky: after the first failure all subsequent Get
// calls return zero values and Err reports the original error.
type Decoder struct {
	data []byte
	pos  int
	err  error
}

// NewDecoder returns a Decoder over data. The Decoder does not copy data.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.pos }

// fail records the first decoding error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// align advances the read position to an n-byte boundary.
func (d *Decoder) align(n int) {
	pad := (n - d.pos%n) % n
	if d.pos+pad > len(d.data) {
		d.fail(ErrTruncated)
		d.pos = len(d.data)
		return
	}
	d.pos += pad
}

// take returns the next n bytes or nil after recording ErrTruncated.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.pos+n > len(d.data) {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b
}

// GetOctet reads one byte.
func (d *Decoder) GetOctet() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// GetBool reads one octet as a boolean; any nonzero value is true.
func (d *Decoder) GetBool() bool { return d.GetOctet() != 0 }

// GetUint16 reads an aligned big-endian uint16.
func (d *Decoder) GetUint16() uint16 {
	d.align(2)
	b := d.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

// GetUint32 reads an aligned big-endian uint32.
func (d *Decoder) GetUint32() uint32 {
	d.align(4)
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// GetUint64 reads an aligned big-endian uint64.
func (d *Decoder) GetUint64() uint64 {
	d.align(8)
	b := d.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// GetInt16 reads an aligned big-endian int16.
func (d *Decoder) GetInt16() int16 { return int16(d.GetUint16()) }

// GetInt32 reads an aligned big-endian int32.
func (d *Decoder) GetInt32() int32 { return int32(d.GetUint32()) }

// GetInt64 reads an aligned big-endian int64.
func (d *Decoder) GetInt64() int64 { return int64(d.GetUint64()) }

// GetFloat32 reads an aligned IEEE-754 float32.
func (d *Decoder) GetFloat32() float32 { return math.Float32frombits(d.GetUint32()) }

// GetFloat64 reads an aligned IEEE-754 float64.
func (d *Decoder) GetFloat64() float64 { return math.Float64frombits(d.GetUint64()) }

// seqLen reads and validates a sequence length prefix, bounding it both by
// MaxSequenceLen and by the bytes actually remaining (each element needs at
// least minElemSize bytes), so hostile prefixes cannot force allocation.
func (d *Decoder) seqLen(minElemSize int) int {
	n := d.GetUint32()
	if d.err != nil {
		return 0
	}
	if n > MaxSequenceLen {
		d.fail(fmt.Errorf("%w: %d", ErrTooLong, n))
		return 0
	}
	if minElemSize > 0 && int(n) > d.Remaining()/minElemSize+1 {
		d.fail(ErrTruncated)
		return 0
	}
	return int(n)
}

// GetString reads a length-prefixed string.
func (d *Decoder) GetString() string {
	n := d.seqLen(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// GetStringBytes reads a length-prefixed string and returns the raw bytes
// without copying: the slice aliases the decoder's buffer and is only
// valid while that buffer is. Callers that retain the value must copy or
// intern it; the giop frame reader does the latter to decode repeated
// object keys and operation names without allocating.
func (d *Decoder) GetStringBytes() []byte {
	return d.take(d.seqLen(1))
}

// GetBytes reads a sequence<octet>. The returned slice is a copy.
func (d *Decoder) GetBytes() []byte {
	n := d.seqLen(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// GetFloat64Seq reads a sequence<double>.
func (d *Decoder) GetFloat64Seq() []float64 {
	n := d.seqLen(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.GetFloat64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// GetInt32Seq reads a sequence<long>.
func (d *Decoder) GetInt32Seq() []int32 {
	n := d.seqLen(4)
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.GetInt32()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// GetStringSeq reads a sequence<string>.
func (d *Decoder) GetStringSeq() []string {
	n := d.seqLen(4)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.GetString()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// GetValue decodes into an Unmarshaler and records any error it returns.
func (d *Decoder) GetValue(u Unmarshaler) {
	if d.err != nil {
		return
	}
	if err := u.UnmarshalCDR(d); err != nil {
		d.fail(err)
	}
}
