package cdr

// An encapsulation is a self-contained CDR stream stored as an octet
// sequence, used wherever a blob must be decoded independently of its
// surrounding stream (service contexts, object reference profiles,
// checkpoint payloads). CORBA encapsulations begin with a byte-order flag
// octet; this implementation is always big-endian but keeps the flag for
// wire compatibility with the format's intent.

// encapFlagBigEndian is the byte-order flag stored at offset 0 of every
// encapsulation (0 = big-endian in CDR).
const encapFlagBigEndian = 0

// Encapsulate runs fill against a fresh Encoder and returns the resulting
// stream prefixed with the byte-order flag, ready for PutBytes.
func Encapsulate(fill func(*Encoder)) []byte {
	e := NewEncoder(64)
	e.PutOctet(encapFlagBigEndian)
	fill(e)
	return e.Bytes()
}

// OpenEncapsulation validates the byte-order flag of an encapsulation and
// returns a Decoder positioned after it.
func OpenEncapsulation(data []byte) (*Decoder, error) {
	d := NewDecoder(data)
	flag := d.GetOctet()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if flag != encapFlagBigEndian {
		return nil, ErrByteOrder
	}
	return d, nil
}

// ErrByteOrder is reported for encapsulations declaring little-endian
// order, which this implementation does not produce or accept.
var ErrByteOrder = errorString("cdr: unsupported little-endian encapsulation")

type errorString string

func (e errorString) Error() string { return string(e) }
