package cdr

// PutSeq encodes a sequence with a per-element encoder, for element types
// without a dedicated helper (generated stubs use it with method
// expressions, e.g. PutSeq(e, v, (*Encoder).PutInt16)).
func PutSeq[T any](e *Encoder, v []T, put func(*Encoder, T)) {
	e.PutUint32(uint32(len(v)))
	for _, x := range v {
		put(e, x)
	}
}

// GetSeq decodes a sequence with a per-element decoder. minElemSize is the
// minimal encoded element size in bytes; it bounds the up-front allocation
// against hostile length prefixes exactly like the typed helpers.
func GetSeq[T any](d *Decoder, minElemSize int, get func(*Decoder) T) []T {
	n := d.seqLen(minElemSize)
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]T, n)
	for i := range out {
		out[i] = get(d)
	}
	if d.err != nil {
		return nil
	}
	return out
}
