package cdr

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestOctetRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutOctet(0)
	e.PutOctet(0x7f)
	e.PutOctet(0xff)
	d := NewDecoder(e.Bytes())
	for _, want := range []byte{0, 0x7f, 0xff} {
		if got := d.GetOctet(); got != want {
			t.Errorf("GetOctet = %#x, want %#x", got, want)
		}
	}
	if d.Err() != nil {
		t.Fatalf("unexpected error: %v", d.Err())
	}
}

func TestBoolRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutBool(true)
	e.PutBool(false)
	d := NewDecoder(e.Bytes())
	if !d.GetBool() || d.GetBool() {
		t.Fatal("bool round trip failed")
	}
}

func TestIntegerRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint16(0xbeef)
	e.PutInt16(-2)
	e.PutUint32(0xdeadbeef)
	e.PutInt32(-123456789)
	e.PutUint64(0x0102030405060708)
	e.PutInt64(math.MinInt64)
	d := NewDecoder(e.Bytes())
	if got := d.GetUint16(); got != 0xbeef {
		t.Errorf("uint16 = %#x", got)
	}
	if got := d.GetInt16(); got != -2 {
		t.Errorf("int16 = %d", got)
	}
	if got := d.GetUint32(); got != 0xdeadbeef {
		t.Errorf("uint32 = %#x", got)
	}
	if got := d.GetInt32(); got != -123456789 {
		t.Errorf("int32 = %d", got)
	}
	if got := d.GetUint64(); got != 0x0102030405060708 {
		t.Errorf("uint64 = %#x", got)
	}
	if got := d.GetInt64(); got != math.MinInt64 {
		t.Errorf("int64 = %d", got)
	}
	if d.Err() != nil {
		t.Fatalf("err = %v", d.Err())
	}
}

func TestFloatRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutFloat32(3.5)
	e.PutFloat64(math.Pi)
	e.PutFloat64(math.Inf(-1))
	d := NewDecoder(e.Bytes())
	if got := d.GetFloat32(); got != 3.5 {
		t.Errorf("float32 = %v", got)
	}
	if got := d.GetFloat64(); got != math.Pi {
		t.Errorf("float64 = %v", got)
	}
	if got := d.GetFloat64(); !math.IsInf(got, -1) {
		t.Errorf("float64 inf = %v", got)
	}
}

func TestFloat64NaNRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutFloat64(math.NaN())
	d := NewDecoder(e.Bytes())
	if got := d.GetFloat64(); !math.IsNaN(got) {
		t.Errorf("NaN round trip = %v", got)
	}
}

func TestAlignmentRules(t *testing.T) {
	// An octet followed by a uint32 must pad to offset 4.
	e := NewEncoder(0)
	e.PutOctet(0xaa)
	e.PutUint32(1)
	if e.Len() != 8 {
		t.Fatalf("len = %d, want 8 (1 octet + 3 pad + 4)", e.Len())
	}
	if !bytes.Equal(e.Bytes()[1:4], []byte{0, 0, 0}) {
		t.Fatalf("padding bytes = %v", e.Bytes()[1:4])
	}
	d := NewDecoder(e.Bytes())
	if d.GetOctet() != 0xaa || d.GetUint32() != 1 {
		t.Fatal("aligned round trip failed")
	}
}

func TestAlignmentUint64AfterOctet(t *testing.T) {
	e := NewEncoder(0)
	e.PutOctet(1)
	e.PutUint64(7)
	if e.Len() != 16 {
		t.Fatalf("len = %d, want 16", e.Len())
	}
	d := NewDecoder(e.Bytes())
	d.GetOctet()
	if d.GetUint64() != 7 {
		t.Fatal("uint64 after octet failed")
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{"", "a", "hello world", "Hölderlinstraße", string([]byte{0, 1, 2})}
	e := NewEncoder(0)
	for _, s := range cases {
		e.PutString(s)
	}
	d := NewDecoder(e.Bytes())
	for _, want := range cases {
		if got := d.GetString(); got != want {
			t.Errorf("GetString = %q, want %q", got, want)
		}
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestBytesRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	e.PutBytes([]byte{1, 2, 3})
	e.PutBytes(nil)
	d := NewDecoder(e.Bytes())
	if got := d.GetBytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("bytes = %v", got)
	}
	if got := d.GetBytes(); len(got) != 0 {
		t.Errorf("empty bytes = %v", got)
	}
}

func TestBytesDecodeReturnsCopy(t *testing.T) {
	e := NewEncoder(0)
	e.PutBytes([]byte{9, 9})
	raw := e.Bytes()
	d := NewDecoder(raw)
	got := d.GetBytes()
	got[0] = 1
	d2 := NewDecoder(raw)
	if b := d2.GetBytes(); b[0] != 9 {
		t.Fatal("GetBytes did not return an independent copy")
	}
}

func TestSequenceRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	f := []float64{1.5, -2.5, math.MaxFloat64}
	i := []int32{-1, 0, 1 << 30}
	s := []string{"x", "", "yz"}
	e.PutFloat64Seq(f)
	e.PutInt32Seq(i)
	e.PutStringSeq(s)
	d := NewDecoder(e.Bytes())
	gf := d.GetFloat64Seq()
	gi := d.GetInt32Seq()
	gs := d.GetStringSeq()
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	for k := range f {
		if gf[k] != f[k] {
			t.Errorf("float seq[%d] = %v", k, gf[k])
		}
	}
	for k := range i {
		if gi[k] != i[k] {
			t.Errorf("int seq[%d] = %v", k, gi[k])
		}
	}
	for k := range s {
		if gs[k] != s[k] {
			t.Errorf("string seq[%d] = %q", k, gs[k])
		}
	}
}

func TestEmptySequences(t *testing.T) {
	e := NewEncoder(0)
	e.PutFloat64Seq(nil)
	e.PutInt32Seq(nil)
	e.PutStringSeq(nil)
	d := NewDecoder(e.Bytes())
	if v := d.GetFloat64Seq(); v != nil {
		t.Errorf("empty float seq = %v", v)
	}
	if v := d.GetInt32Seq(); v != nil {
		t.Errorf("empty int seq = %v", v)
	}
	if v := d.GetStringSeq(); v != nil {
		t.Errorf("empty string seq = %v", v)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestTruncatedStream(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint64(42)
	data := e.Bytes()[:5]
	d := NewDecoder(data)
	if got := d.GetUint64(); got != 0 {
		t.Errorf("truncated uint64 = %d, want 0", got)
	}
	if d.Err() == nil {
		t.Fatal("expected truncation error")
	}
}

func TestErrorIsSticky(t *testing.T) {
	d := NewDecoder([]byte{0, 0, 0})
	d.GetUint32() // fails
	first := d.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	d.GetUint32()
	d.GetString()
	if d.Err() != first {
		t.Fatalf("error replaced: %v", d.Err())
	}
}

func TestHostileLengthPrefix(t *testing.T) {
	// A 4 GiB string length with 0 bytes of payload must not allocate.
	e := NewEncoder(0)
	e.PutUint32(0xffffffff)
	d := NewDecoder(e.Bytes())
	if s := d.GetString(); s != "" {
		t.Errorf("hostile string = %q", s)
	}
	if d.Err() == nil {
		t.Fatal("expected length error")
	}
}

func TestHostileSequenceLength(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint32(1 << 24) // claims 16M doubles; stream has none
	d := NewDecoder(e.Bytes())
	if v := d.GetFloat64Seq(); v != nil {
		t.Errorf("hostile seq = %d elems", len(v))
	}
	if d.Err() == nil {
		t.Fatal("expected error")
	}
}

type point struct {
	X, Y float64
	Name string
}

func (p *point) MarshalCDR(e *Encoder) {
	e.PutFloat64(p.X)
	e.PutFloat64(p.Y)
	e.PutString(p.Name)
}

func (p *point) UnmarshalCDR(d *Decoder) error {
	p.X = d.GetFloat64()
	p.Y = d.GetFloat64()
	p.Name = d.GetString()
	return d.Err()
}

func TestValueRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	in := &point{X: 1, Y: -2, Name: "origin-ish"}
	e.PutValue(in)
	var out point
	d := NewDecoder(e.Bytes())
	d.GetValue(&out)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if out != *in {
		t.Fatalf("value round trip: got %+v want %+v", out, *in)
	}
}

func TestEncapsulationRoundTrip(t *testing.T) {
	blob := Encapsulate(func(e *Encoder) {
		e.PutString("ctx")
		e.PutUint32(7)
	})
	d, err := OpenEncapsulation(blob)
	if err != nil {
		t.Fatal(err)
	}
	if s := d.GetString(); s != "ctx" {
		t.Errorf("string = %q", s)
	}
	if v := d.GetUint32(); v != 7 {
		t.Errorf("uint32 = %d", v)
	}
}

func TestEncapsulationRejectsLittleEndian(t *testing.T) {
	if _, err := OpenEncapsulation([]byte{1, 0, 0, 0}); err != ErrByteOrder {
		t.Fatalf("err = %v, want ErrByteOrder", err)
	}
}

func TestEncapsulationEmpty(t *testing.T) {
	if _, err := OpenEncapsulation(nil); err == nil {
		t.Fatal("expected error for empty encapsulation")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(0)
	e.PutUint32(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	e.PutUint32(2)
	d := NewDecoder(e.Bytes())
	if d.GetUint32() != 2 {
		t.Fatal("post-reset encode failed")
	}
}

// Property: any sequence of primitive writes decodes to the same values.
func TestQuickPrimitiveRoundTrip(t *testing.T) {
	f := func(a uint32, b int64, c float64, s string, o byte, fl bool) bool {
		e := NewEncoder(0)
		e.PutOctet(o)
		e.PutUint32(a)
		e.PutBool(fl)
		e.PutInt64(b)
		e.PutFloat64(c)
		e.PutString(s)
		d := NewDecoder(e.Bytes())
		okO := d.GetOctet() == o
		okA := d.GetUint32() == a
		okF := d.GetBool() == fl
		okB := d.GetInt64() == b
		gc := d.GetFloat64()
		okC := gc == c || (math.IsNaN(gc) && math.IsNaN(c))
		okS := d.GetString() == s
		return okO && okA && okF && okB && okC && okS && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: float64 sequences round trip exactly.
func TestQuickFloat64SeqRoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		e := NewEncoder(0)
		e.PutFloat64Seq(v)
		d := NewDecoder(e.Bytes())
		got := d.GetFloat64Seq()
		if d.Err() != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] && !(math.IsNaN(got[i]) && math.IsNaN(v[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a decoder never panics and never reads past the buffer on
// arbitrary input.
func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		d := NewDecoder(data)
		d.GetOctet()
		d.GetUint32()
		d.GetString()
		d.GetFloat64Seq()
		d.GetInt64()
		return d.Remaining() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenericSeqRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	in16 := []int16{-3, 0, 9}
	PutSeq(e, in16, (*Encoder).PutInt16)
	inU := []uint64{1, 1 << 60}
	PutSeq(e, inU, (*Encoder).PutUint64)
	d := NewDecoder(e.Bytes())
	out16 := GetSeq(d, 2, (*Decoder).GetInt16)
	outU := GetSeq(d, 8, (*Decoder).GetUint64)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if len(out16) != 3 || out16[0] != -3 || out16[2] != 9 {
		t.Fatalf("int16 seq = %v", out16)
	}
	if len(outU) != 2 || outU[1] != 1<<60 {
		t.Fatalf("uint64 seq = %v", outU)
	}
}

func TestGenericSeqEmptyAndHostile(t *testing.T) {
	e := NewEncoder(0)
	PutSeq(e, nil, (*Encoder).PutInt16)
	d := NewDecoder(e.Bytes())
	if out := GetSeq(d, 2, (*Decoder).GetInt16); out != nil {
		t.Fatalf("empty seq = %v", out)
	}
	// Hostile length with no payload must not allocate.
	e2 := NewEncoder(0)
	e2.PutUint32(1 << 25)
	d2 := NewDecoder(e2.Bytes())
	if out := GetSeq(d2, 8, (*Decoder).GetUint64); out != nil {
		t.Fatalf("hostile seq = %d elems", len(out))
	}
	if d2.Err() == nil {
		t.Fatal("expected error")
	}
}

func TestPutRaw(t *testing.T) {
	e := NewEncoder(0)
	e.PutRaw([]byte{1, 2, 3})
	if e.Len() != 3 || e.Bytes()[2] != 3 {
		t.Fatalf("raw = %v", e.Bytes())
	}
}

func TestGetValueAfterError(t *testing.T) {
	d := NewDecoder(nil)
	d.GetUint32() // poisons the decoder
	var p point
	d.GetValue(&p) // must be a no-op, not a panic
	if d.Err() == nil {
		t.Fatal("error lost")
	}
}

func BenchmarkEncodeFloat64Seq(b *testing.B) {
	v := make([]float64, 128)
	e := NewEncoder(2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutFloat64Seq(v)
	}
}

func BenchmarkDecodeFloat64Seq(b *testing.B) {
	v := make([]float64, 128)
	e := NewEncoder(2048)
	e.PutFloat64Seq(v)
	data := e.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(data)
		if d.GetFloat64Seq() == nil && len(v) > 0 {
			b.Fatal("decode failed")
		}
	}
}
