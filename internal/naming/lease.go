package naming

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/orb"
)

// Lease plumbing: offers bound with a TTL must be renewed or the
// registry's sweeper unbinds them. Leases complement the ping-based
// ft.Detector: the detector catches servers that died (pings fail), the
// sweeper catches the partition case where pings still succeed but the
// server can no longer reach the naming service to renew — either way
// the registry stops handing out the reference.

// SweeperOptions tune a Sweeper.
type SweeperOptions struct {
	// Period is the sweep interval (default 500ms).
	Period time.Duration
	// OnEvict, when set, observes every eviction (tests, metrics hooks).
	OnEvict func(ExpiredOffer)
	// Logger receives one line per eviction (default slog.Default()).
	Logger *slog.Logger
}

// Sweeper periodically expires leased offers from a Registry.
type Sweeper struct {
	reg  *Registry
	opts SweeperOptions

	evicted  atomic.Uint64
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool
	mu       sync.Mutex
}

// NewSweeper builds a sweeper over reg.
func NewSweeper(reg *Registry, opts SweeperOptions) *Sweeper {
	if opts.Period <= 0 {
		opts.Period = 500 * time.Millisecond
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	return &Sweeper{reg: reg, opts: opts, stop: make(chan struct{}), done: make(chan struct{})}
}

// Evicted returns the total number of offers the sweeper has unbound —
// exported by the nameserver as naming_offers_evicted_total.
func (s *Sweeper) Evicted() uint64 { return s.evicted.Load() }

// Step runs one sweep and returns what was evicted.
func (s *Sweeper) Step() []ExpiredOffer {
	evicted := s.reg.ExpireOffers()
	for _, ev := range evicted {
		s.evicted.Add(1)
		s.opts.Logger.Info("naming: lease expired, offer evicted",
			"name", ev.Name.String(), "host", ev.Offer.Host,
			"addr", ev.Offer.Ref.Addr, "ttl", ev.Offer.LeaseTTL.String())
		if s.opts.OnEvict != nil {
			s.opts.OnEvict(ev)
		}
	}
	return evicted
}

// Start launches the periodic sweep loop. Start is idempotent.
func (s *Sweeper) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.opts.Period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Step()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the sweep loop and waits for it to exit.
func (s *Sweeper) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		<-s.done
	}
}

// LeaseBinder is the client-side surface a lease renewer needs:
// naming.Client and HAClient both satisfy it.
type LeaseBinder interface {
	BindOfferLease(ctx context.Context, name Name, ref orb.ObjectRef, host string, ttl time.Duration) error
	RenewLease(ctx context.Context, name Name, ref orb.ObjectRef, ttl time.Duration) error
}

// LeaseRenewer keeps one offer's lease alive: it renews at TTL/3 (so two
// renewals can be lost before the lease lapses) and re-registers the
// offer when the registry reports it evicted (NotFound).
type LeaseRenewer struct {
	ns   LeaseBinder
	name Name
	ref  orb.ObjectRef
	host string
	ttl  time.Duration

	renewals atomic.Uint64
	rebinds  atomic.Uint64
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartLeaseRenewer launches the renewal loop for an offer already bound
// with BindOfferLease(..., ttl).
func StartLeaseRenewer(ns LeaseBinder, name Name, ref orb.ObjectRef, host string, ttl time.Duration) *LeaseRenewer {
	r := &LeaseRenewer{
		ns: ns, name: name, ref: ref, host: host, ttl: ttl,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go r.loop()
	return r
}

// Renewals returns how many successful renew calls the loop has made.
func (r *LeaseRenewer) Renewals() uint64 { return r.renewals.Load() }

// Rebinds returns how many times the loop re-registered an evicted offer.
func (r *LeaseRenewer) Rebinds() uint64 { return r.rebinds.Load() }

// Stop halts the renewal loop; the lease then lapses after at most TTL.
func (r *LeaseRenewer) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *LeaseRenewer) loop() {
	defer close(r.done)
	period := r.ttl / 3
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.renewOnce(period)
		case <-r.stop:
			return
		}
	}
}

// renewOnce performs one renewal attempt, re-binding if evicted.
func (r *LeaseRenewer) renewOnce(period time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), period)
	defer cancel()
	err := r.ns.RenewLease(ctx, r.name, r.ref, r.ttl)
	if err == nil {
		r.renewals.Add(1)
		return
	}
	if orb.IsUserException(err, ExNotFound) {
		// The sweeper (or an operator) unbound the offer: re-register. The
		// server is demonstrably alive — it is running this loop.
		if berr := r.ns.BindOfferLease(ctx, r.name, r.ref, r.host, r.ttl); berr == nil {
			r.rebinds.Add(1)
		}
		return
	}
	// Transient naming failure: the next tick retries; the TTL/3 cadence
	// tolerates two consecutive losses.
	slog.Debug("naming: lease renewal failed", "name", r.name.String(), "err", err)
}
