package naming

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/orb"
)

// Replication: every nameserver replica periodically pushes its registry
// snapshot (stamped with the monotonic epoch) to its peers via the
// sync_state operation; receivers adopt only strictly newer state
// (Registry.AdoptSnapshot). With clients pinned to a common primary
// ordering (HAClient), writes serialise on one replica and the others
// trail by at most one sync period — the classic primary-copy CosNaming
// deployment, with last-writer-wins convergence after partitions.

// ReplicatorOptions tune a Replicator.
type ReplicatorOptions struct {
	// Period is the push interval (default 1s). Pushes are skipped while
	// the local epoch hasn't moved since the last successful push.
	Period time.Duration
	// PushTimeout bounds one push to one peer (default: Period).
	PushTimeout time.Duration
	// Logger receives replication diagnostics (default slog.Default()).
	Logger *slog.Logger
}

// replPeer is one replication target. The peer's reference may live in a
// ref-file that does not exist yet (replicas starting concurrently), so
// resolution is lazy and retried every round until it succeeds.
type replPeer struct {
	spec string

	mu         sync.Mutex
	client     *Client
	lastPushed uint64
	hasPushed  bool
}

// Replicator pushes registry snapshots to peer nameservers.
type Replicator struct {
	orb   *orb.ORB
	reg   *Registry
	peers []*replPeer
	opts  ReplicatorOptions

	pushes     atomic.Uint64
	pushErrors atomic.Uint64
	stopOnce   sync.Once
	stop       chan struct{}
	done       chan struct{}
	started    bool
	mu         sync.Mutex
}

// ParsePeerSpecs splits a comma-separated -peers value into individual
// peer specs. Each spec is either a stringified reference (SIOR) or
// @path, naming a file the peer's SIOR will appear in (the checkpointd
// -peers convention) — resolved lazily, so replicas can start in any
// order.
func ParsePeerSpecs(spec string) []string {
	var out []string
	for _, p := range strings.Split(spec, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// NewReplicator builds a replicator pushing reg's snapshots to peers.
func NewReplicator(o *orb.ORB, reg *Registry, peerSpecs []string, opts ReplicatorOptions) *Replicator {
	if opts.Period <= 0 {
		opts.Period = time.Second
	}
	if opts.PushTimeout <= 0 {
		opts.PushTimeout = opts.Period
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	r := &Replicator{orb: o, reg: reg, opts: opts, stop: make(chan struct{}), done: make(chan struct{})}
	for _, spec := range peerSpecs {
		r.peers = append(r.peers, &replPeer{spec: spec})
	}
	return r
}

// Pushes returns how many snapshot pushes have succeeded.
func (r *Replicator) Pushes() uint64 { return r.pushes.Load() }

// PushErrors returns how many pushes have failed (peer down, not yet
// resolvable, ...). Failed pushes retry next round.
func (r *Replicator) PushErrors() uint64 { return r.pushErrors.Load() }

// resolve returns the peer's client stub, building it on first use.
func (p *replPeer) resolve(o *orb.ORB) (*Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.client != nil {
		return p.client, nil
	}
	spec := p.spec
	if strings.HasPrefix(spec, "@") {
		raw, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("naming: peer ref file: %w", err)
		}
		spec = strings.TrimSpace(string(raw))
	}
	ref, err := orb.RefFromString(spec)
	if err != nil {
		return nil, fmt.Errorf("naming: peer reference: %w", err)
	}
	p.client = NewClient(o, ref)
	return p.client, nil
}

// Step pushes the current snapshot to every peer whose view is behind.
// Tests drive Step directly; production use runs Start.
func (r *Replicator) Step(ctx context.Context) {
	epoch := r.reg.Epoch()
	var snap []byte
	for _, p := range r.peers {
		p.mu.Lock()
		upToDate := p.hasPushed && p.lastPushed >= epoch
		p.mu.Unlock()
		if upToDate {
			continue
		}
		client, err := p.resolve(r.orb)
		if err != nil {
			r.pushErrors.Add(1)
			continue
		}
		if snap == nil {
			// Taken after the epoch read, so the snapshot is at least as
			// new as what we record below — a concurrent mutation costs
			// one redundant push, never a lost one.
			snap = r.reg.Snapshot()
		}
		pctx, cancel := context.WithTimeout(ctx, r.opts.PushTimeout)
		adopted, peerEpoch, err := client.SyncState(pctx, snap)
		cancel()
		if err != nil {
			r.pushErrors.Add(1)
			r.opts.Logger.Debug("naming: replication push failed", "peer", p.spec, "err", err)
			continue
		}
		r.pushes.Add(1)
		p.mu.Lock()
		p.lastPushed = epoch
		p.hasPushed = true
		p.mu.Unlock()
		if !adopted && peerEpoch > epoch {
			// The peer is ahead: it will push to us shortly. Nothing to do —
			// adoption is one-directional per push.
			r.opts.Logger.Debug("naming: peer ahead", "peer", p.spec, "peer_epoch", peerEpoch, "local_epoch", epoch)
		}
	}
}

// Start launches the periodic push loop. Start is idempotent.
func (r *Replicator) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.opts.Period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Step(context.Background())
			case <-r.stop:
				return
			}
		}
	}()
}

// HealthProbe is the replication mesh's component probe for obs.Health:
// unhealthy before Start, after Stop, and while every push so far has
// failed (no peer reachable yet — replicas are diverging).
func (r *Replicator) HealthProbe() error {
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if !started {
		return errors.New("replicator not started")
	}
	select {
	case <-r.stop:
		return errors.New("replicator stopped")
	default:
	}
	if p, e := r.pushes.Load(), r.pushErrors.Load(); p == 0 && e > 0 {
		return fmt.Errorf("no peer reachable yet (%d push errors)", e)
	}
	return nil
}

// Stop halts the push loop and waits for it to exit.
func (r *Replicator) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.done
	}
}
