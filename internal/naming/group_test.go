package naming

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/orb"
)

// fakeBinder is an in-memory WatchBinder: no nameserver, no pushes —
// tests drive the cache through watch replies and direct apply calls.
type fakeBinder struct {
	mu        sync.Mutex
	leases    []OfferLease
	epoch     uint64
	watches   int
	unwatches int
}

func (f *fakeBinder) Watch(ctx context.Context, name Name, callback orb.ObjectRef, sinceEpoch uint64) ([]OfferLease, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.watches++
	out := make([]OfferLease, len(f.leases))
	copy(out, f.leases)
	return out, f.epoch, nil
}

func (f *fakeBinder) Unwatch(ctx context.Context, name Name, callback orb.ObjectRef) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.unwatches++
	return nil
}

func (f *fakeBinder) watchCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.watches
}

func offerLease(addr, key string) OfferLease {
	return OfferLease{Offer: Offer{Ref: testRef(addr, key), Host: addr}}
}

func TestSpreadRoundRobinCycles(t *testing.T) {
	f := &fakeBinder{leases: []OfferLease{
		offerLease("h1:1", "a"), offerLease("h2:1", "b"), offerLease("h3:1", "c"),
	}, epoch: 1}
	cache := newTestCache(t, f, GroupCacheOptions{})
	g := cache.Group(NewName("svc"), SpreadRoundRobin)

	counts := map[orb.ObjectRef]int{}
	for i := 0; i < 9; i++ {
		ref, err := g.Pick(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		counts[ref]++
	}
	if len(counts) != 3 {
		t.Fatalf("round-robin reached %d members, want 3", len(counts))
	}
	for ref, n := range counts {
		if n != 3 {
			t.Fatalf("uneven round-robin: %v picked %d times, want 3", ref, n)
		}
	}
	if f.watchCount() != 1 {
		t.Fatalf("%d watch calls for 9 picks, want 1", f.watchCount())
	}
}

func TestSpreadStickyPinsAndFailsOver(t *testing.T) {
	f := &fakeBinder{leases: []OfferLease{
		offerLease("h1:1", "a"), offerLease("h2:1", "b"),
	}, epoch: 1}
	cache := newTestCache(t, f, GroupCacheOptions{})
	g := cache.Group(NewName("svc"), SpreadSticky)
	ctx := context.Background()

	first, err := g.Pick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ref, err := g.Pick(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ref != first {
			t.Fatalf("sticky ref moved from %v to %v without a death", first, ref)
		}
	}

	g.MarkDead(first)
	second, err := g.Pick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if second == first {
		t.Fatal("sticky ref did not fail over off the dead member")
	}
	for i := 0; i < 5; i++ {
		ref, err := g.Pick(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ref != second {
			t.Fatalf("sticky ref unstable after failover: %v vs %v", ref, second)
		}
	}
	if cache.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", cache.Failovers())
	}
	if f.watchCount() != 1 {
		t.Fatalf("failover cost %d watch calls, want the initial 1 only", f.watchCount())
	}
}

func TestSpreadWeightedBiasesHead(t *testing.T) {
	head := offerLease("h1:1", "a")
	f := &fakeBinder{leases: []OfferLease{
		head, offerLease("h2:1", "b"), offerLease("h3:1", "c"),
	}, epoch: 1}
	cache := newTestCache(t, f, GroupCacheOptions{})
	g := cache.Group(NewName("svc"), SpreadWeighted)

	counts := map[orb.ObjectRef]int{}
	const picks = 2000
	for i := 0; i < picks; i++ {
		ref, err := g.Pick(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		counts[ref]++
	}
	// p(head) = 1/2: expect ~1000 of 2000; allow wide slack.
	got := counts[head.Offer.Ref]
	if got < picks*2/5 || got > picks*3/5 {
		t.Fatalf("head got %d of %d picks, want roughly half", got, picks)
	}
	for ref, n := range counts {
		if ref != head.Offer.Ref && n >= got {
			t.Fatalf("non-head member %v (%d) out-picked the head (%d)", ref, n, got)
		}
	}
}

func TestDeadMemberTTLReeligibility(t *testing.T) {
	refA := testRef("h1:1", "a")
	f := &fakeBinder{leases: []OfferLease{
		{Offer: Offer{Ref: refA, Host: "h1"}}, offerLease("h2:1", "b"),
	}, epoch: 1}
	base := time.Now()
	var offset atomic.Int64
	cache := newTestCache(t, f, GroupCacheOptions{
		DeadMemberTTL: 10 * time.Second,
		Clock:         func() time.Time { return base.Add(time.Duration(offset.Load())) },
	})
	g := cache.Group(NewName("svc"), SpreadRoundRobin)
	ctx := context.Background()

	if _, err := g.Pick(ctx); err != nil {
		t.Fatal(err)
	}
	g.MarkDead(refA)
	for i := 0; i < 6; i++ {
		ref, err := g.Pick(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ref == refA {
			t.Fatal("picked a member inside its dead-sideline window")
		}
	}

	// Past the sideline TTL the member is eligible again (false-positive
	// damage is bounded even if no push ever confirms the death).
	offset.Store(int64(11 * time.Second))
	seen := map[orb.ObjectRef]bool{}
	for i := 0; i < 6; i++ {
		ref, err := g.Pick(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen[ref] = true
	}
	if !seen[refA] {
		t.Fatal("sidelined member never became eligible after DeadMemberTTL")
	}
}

func TestEmptyGroupFailsLocally(t *testing.T) {
	f := &fakeBinder{epoch: 1}
	cache := newTestCache(t, f, GroupCacheOptions{})
	g := cache.Group(NewName("svc"), SpreadRoundRobin)

	for i := 0; i < 5; i++ {
		if _, err := g.Pick(context.Background()); !orb.IsUserException(err, ExNotFound) {
			t.Fatalf("empty group: want NotFound, got %v", err)
		}
	}
	// The empty view from the first watch is authoritative: repeated
	// picks must not turn into repeated naming calls.
	if f.watchCount() != 1 {
		t.Fatalf("5 failing picks cost %d watch calls, want 1", f.watchCount())
	}
}

func TestApplyEpochGuard(t *testing.T) {
	f := &fakeBinder{}
	cache := newTestCache(t, f, GroupCacheOptions{})
	name := NewName("svc")
	cache.Group(name, SpreadRoundRobin)

	one := []OfferLease{offerLease("h1:1", "a")}
	two := []OfferLease{offerLease("h1:1", "a"), offerLease("h2:1", "b")}

	cache.apply(name, 5, two)
	cache.apply(name, 3, one) // late reordered push: must not regress
	cache.apply(name, 5, one) // duplicate delivery: must not regress
	cache.apply(name, 6, one)

	if got := cache.Epoch(name); got != 6 {
		t.Fatalf("epoch = %d, want 6", got)
	}
	if got := len(cache.Members(name)); got != 1 {
		t.Fatalf("members = %d, want the epoch-6 view (1)", got)
	}
	if cache.StaleDrops() != 2 {
		t.Fatalf("stale drops = %d, want 2", cache.StaleDrops())
	}
	if cache.Applied() != 2 {
		t.Fatalf("applied = %d, want 2", cache.Applied())
	}
}
