package naming

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/obs"
	"repro/internal/orb"
)

// Client side of the push protocol: a GroupCache holds, per watched
// name, the membership the nameserver last pushed (or replied to a
// watch with), versioned by the registry epoch. GroupRefs hand out
// members from that cache with a spreading policy, so the common
// failover path — one member dies — is handled entirely locally:
// MarkDead sidelines the member, the next Pick lands on a survivor, and
// the authoritative removal arrives as a push. No resolve RPC at all.
// When the push channel itself is partitioned, a jittered periodic
// re-watch (one RPC per name per period, not per call) is the fallback
// that keeps the cache from rotting.

// WatchBinder is the client surface the cache subscribes through;
// naming.Client and HAClient both satisfy it.
type WatchBinder interface {
	Watch(ctx context.Context, name Name, callback orb.ObjectRef, sinceEpoch uint64) ([]OfferLease, uint64, error)
	Unwatch(ctx context.Context, name Name, callback orb.ObjectRef) error
}

// SpreadPolicy says how a GroupRef spreads calls over live members.
type SpreadPolicy int

const (
	// SpreadRoundRobin cycles through live members: uniform fan-out for
	// a hot name.
	SpreadRoundRobin SpreadPolicy = iota
	// SpreadWeighted biases geometrically toward the front of the pushed
	// membership. The nameserver ranks pushes winner-first (see
	// RankBySelector), so the least-loaded host gets ~half the traffic
	// with the rest spread down the order — load-aware without a resolve.
	SpreadWeighted
	// SpreadSticky pins every call to one member until it dies, then
	// fails over to a survivor (session affinity with local failover).
	SpreadSticky
)

// GroupCacheOptions tune a GroupCache.
type GroupCacheOptions struct {
	// Refresh is the jittered periodic re-watch interval — the fallback
	// that bounds staleness when the push channel is partitioned
	// (default 60s; negative disables the loop entirely).
	Refresh time.Duration
	// ResubscribeBackoff spaces re-subscription rounds after a naming
	// replica failover. The default is full jitter over 50ms–2s, so ten
	// thousand clients that lost the same replica do not re-watch in one
	// synchronized herd.
	ResubscribeBackoff orb.Backoff
	// DeadMemberTTL is how long a locally-marked-dead member stays
	// sidelined before Picks may try it again, bounding the damage of a
	// false positive until the authoritative push arrives (default 10s).
	DeadMemberTTL time.Duration
	// Logger receives subscription diagnostics (default slog.Default()).
	Logger *slog.Logger
	// OnApply, when set, observes every accepted membership update
	// (tests, metrics hooks). Called outside the cache lock.
	OnApply func(name Name, epoch uint64, members int)
	// HostObserver, when set, receives per-offer host transitions diffed
	// from accepted membership views: Bound for every host slot a view
	// adds, Unbound for every one it drops. A cluster.OfferTracker
	// satisfies it and refcounts the transitions into membership
	// Join/Leave events — the push channel then feeds the same unified
	// view the lease sweeper and the failure detector feed on the server
	// side. Called outside the cache lock.
	HostObserver HostObserver
	// Clock overrides the dead-member and lease clock (tests).
	Clock func() time.Time
}

// HostObserver consumes per-host offer add/remove transitions.
type HostObserver interface {
	Bound(host string)
	Unbound(host string)
}

// groupEntry is the cached state of one watched name.
type groupEntry struct {
	name     Name
	epoch    uint64
	haveView bool // a first view (watch reply or push) has been applied
	members  []Offer
	expiry   map[orb.ObjectRef]time.Time // lease expiry per member (absolute, local clock)
	dead     map[orb.ObjectRef]time.Time // locally sidelined until t
	rr       uint64                      // round-robin cursor
}

// listenerKeys makes each activated listener servant key unique within a
// process (many caches may share one adapter).
var listenerKeys atomic.Uint64

// GroupCache is the client-side subscription cache: one listener
// servant, any number of watched names. Safe for concurrent use.
type GroupCache struct {
	ns       WatchBinder
	callback orb.ObjectRef
	opts     GroupCacheOptions

	mu      sync.Mutex
	entries map[string]*groupEntry

	rngMu sync.Mutex
	rng   *rand.Rand

	resubscribes atomic.Uint64
	refreshes    atomic.Uint64
	applied      atomic.Uint64
	staleDrops   atomic.Uint64
	failovers    atomic.Uint64

	resubArm atomic.Bool // collapses concurrent failover triggers

	stopOnce sync.Once
	stop     chan struct{}
	loopOnce sync.Once
}

// NewGroupCache activates a listener servant on ad and returns a cache
// subscribing through ns.
func NewGroupCache(ad *orb.Adapter, ns WatchBinder, opts GroupCacheOptions) *GroupCache {
	if opts.Refresh == 0 {
		opts.Refresh = 60 * time.Second
	}
	if opts.ResubscribeBackoff.Base == 0 {
		opts.ResubscribeBackoff = orb.Backoff{
			Base: 50 * time.Millisecond, Max: 2 * time.Second, Multiplier: 2, Jitter: 1,
		}
	}
	if opts.DeadMemberTTL <= 0 {
		opts.DeadMemberTTL = 10 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	c := &GroupCache{
		ns:      ns,
		opts:    opts,
		entries: make(map[string]*groupEntry),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		stop:    make(chan struct{}),
	}
	key := fmt.Sprintf("naming-listener-%d", listenerKeys.Add(1))
	c.callback = ad.Activate(key, &listenerServant{cache: c})
	return c
}

// Callback returns the listener reference pushes are delivered to.
func (c *GroupCache) Callback() orb.ObjectRef { return c.callback }

// Resubscribes returns how many watch re-registrations the cache has
// performed after naming failovers.
func (c *GroupCache) Resubscribes() uint64 { return c.resubscribes.Load() }

// Applied returns how many membership updates were accepted.
func (c *GroupCache) Applied() uint64 { return c.applied.Load() }

// StaleDrops returns how many pushes were discarded by the epoch guard.
func (c *GroupCache) StaleDrops() uint64 { return c.staleDrops.Load() }

// Failovers returns how many members were locally marked dead.
func (c *GroupCache) Failovers() uint64 { return c.failovers.Load() }

// ExportMetrics registers the cache's counters with an obs registry.
// Only the canonical naming_group_* names are exported; the pre-rename
// group_* aliases completed their one-release deprecation window and are
// gone.
func (c *GroupCache) ExportMetrics(reg *obs.Registry) {
	reg.NewCounterFunc("naming_watch_resubscribes_total",
		"Watch re-registrations after a naming replica failover.", c.Resubscribes)
	reg.NewCounterFunc("naming_group_member_failovers_total",
		"Group members locally marked dead and failed over from pushed membership.", c.Failovers)
	reg.NewCounterFunc("naming_group_invalidations_applied_total",
		"Pushed or fetched membership updates accepted by the epoch guard.", c.Applied)
	reg.NewCounterFunc("naming_group_stale_pushes_dropped_total",
		"Membership updates discarded for carrying a non-newer epoch.", c.StaleDrops)
	reg.NewCounterFunc("naming_group_refreshes_total",
		"Jittered fallback re-watches (push-channel partition insurance).",
		func() uint64 { return c.refreshes.Load() })
}

// Group returns a spreading ref over the group at name. The first Pick
// (or Resolve) subscribes — the watch call doubles as the initial
// resolve, so a group ref costs one naming RPC up front and then none
// until the subscription is lost.
func (c *GroupCache) Group(name Name, policy SpreadPolicy) *GroupRef {
	c.mu.Lock()
	k := name.String()
	if c.entries[k] == nil {
		c.entries[k] = &groupEntry{
			name:   name,
			expiry: make(map[orb.ObjectRef]time.Time),
			dead:   make(map[orb.ObjectRef]time.Time),
		}
	}
	c.mu.Unlock()
	c.startRefreshLoop()
	return &GroupRef{cache: c, name: name, policy: policy}
}

// apply installs a membership view if (and only if) it is strictly newer
// than the one held — the epoch guard that makes reordered oneway pushes
// harmless. The very first view for a name is always accepted.
func (c *GroupCache) apply(name Name, epoch uint64, leases []OfferLease) {
	now := c.opts.Clock()
	k := name.String()
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		// A push for a name we no longer (or never) watch: drop it.
		c.mu.Unlock()
		return
	}
	if e.haveView && epoch <= e.epoch {
		c.staleDrops.Add(1)
		c.mu.Unlock()
		return
	}
	// Host-level diff for the membership observer: count each host's
	// offer slots in the outgoing and incoming views; the signed
	// difference is the set of Bound/Unbound transitions this view causes.
	var hostDelta map[string]int
	if c.opts.HostObserver != nil {
		hostDelta = make(map[string]int)
		for _, o := range e.members {
			if o.Host != "" {
				hostDelta[o.Host]--
			}
		}
		for _, l := range leases {
			if l.Offer.Host != "" {
				hostDelta[l.Offer.Host]++
			}
		}
	}
	e.epoch = epoch
	e.haveView = true
	e.members = e.members[:0]
	clear(e.expiry)
	for _, l := range leases {
		e.members = append(e.members, l.Offer)
		if l.Remaining > 0 {
			// Re-anchor the lease on the local clock: absolute server
			// timestamps do not survive clock skew, remaining durations do.
			e.expiry[l.Offer.Ref] = now.Add(l.Remaining)
		}
	}
	members := len(e.members)
	c.mu.Unlock()
	c.applied.Add(1)
	if ho := c.opts.HostObserver; ho != nil {
		for host, d := range hostDelta {
			for ; d > 0; d-- {
				ho.Bound(host)
			}
			for ; d < 0; d++ {
				ho.Unbound(host)
			}
		}
	}
	if c.opts.OnApply != nil {
		c.opts.OnApply(name, epoch, members)
	}
}

// subscribe (re)registers the watch for e and applies the reply. Counted
// by the caller (initial / refresh / resubscribe have different meters).
func (c *GroupCache) subscribe(ctx context.Context, name Name, sinceEpoch uint64) error {
	leases, epoch, err := c.ns.Watch(ctx, name, c.callback, sinceEpoch)
	if err != nil {
		return err
	}
	c.apply(name, epoch, leases)
	return nil
}

// ensureSubscribed performs the first watch for name if none succeeded
// yet. It serializes per cache (not per name) for simplicity; the fast
// path is one atomic-ish check under the lock.
func (c *GroupCache) ensureSubscribed(ctx context.Context, name Name) error {
	k := name.String()
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		c.mu.Unlock()
		return errNotFound(name)
	}
	if e.haveView {
		c.mu.Unlock()
		return nil
	}
	since := e.epoch
	c.mu.Unlock()
	return c.subscribe(ctx, name, since)
}

// Resubscribe re-registers every watched name on the (new) naming
// primary after a full-jitter backoff delay — the herd-avoidance
// satellite: thousands of clients that lost the same replica spread
// their re-watch calls over the jitter window instead of stampeding.
// Triggers arriving while a resubscription is already pending are
// collapsed. Wire it to HAClient.SetOnFailover.
func (c *GroupCache) Resubscribe() {
	if !c.resubArm.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer c.resubArm.Store(false)
		for round := 1; round <= 8; round++ {
			select {
			case <-c.stop:
				return
			case <-time.After(c.opts.ResubscribeBackoff.Delay(round)):
			}
			if c.rewatchAll(&c.resubscribes) {
				return
			}
			// Some names failed to re-watch; back off further and retry.
			// After the round budget the refresh loop takes over.
		}
	}()
}

// rewatchAll re-watches every entry once, counting successes into
// counter. It reports whether every entry succeeded.
func (c *GroupCache) rewatchAll(counter *atomic.Uint64) bool {
	c.mu.Lock()
	names := make([]Name, 0, len(c.entries))
	sinces := make([]uint64, 0, len(c.entries))
	for _, e := range c.entries {
		names = append(names, e.name)
		sinces = append(sinces, e.epoch)
	}
	c.mu.Unlock()
	ok := true
	for i, n := range names {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := c.subscribe(ctx, n, sinces[i])
		cancel()
		if err != nil {
			ok = false
			c.opts.Logger.Debug("naming: re-watch failed", "name", n.String(), "err", err)
			continue
		}
		counter.Add(1)
	}
	return ok
}

// startRefreshLoop lazily starts the jittered fallback loop (once).
func (c *GroupCache) startRefreshLoop() {
	if c.opts.Refresh < 0 {
		return
	}
	c.loopOnce.Do(func() {
		go func() {
			for {
				d := c.jitteredRefresh()
				select {
				case <-c.stop:
					return
				case <-time.After(d):
				}
				c.rewatchAll(&c.refreshes)
			}
		}()
	})
}

// jitteredRefresh draws the next refresh delay uniformly from
// [Refresh/2, Refresh]: desynchronized by construction.
func (c *GroupCache) jitteredRefresh() time.Duration {
	c.rngMu.Lock()
	f := c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(c.opts.Refresh) * (0.5 + 0.5*f))
}

// Close stops the background loops and best-effort unwatches every name
// (bounded; the server's watcher TTL cleans up anything missed).
func (c *GroupCache) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	names := make([]Name, 0, len(c.entries))
	for _, e := range c.entries {
		names = append(names, e.name)
	}
	c.mu.Unlock()
	for _, n := range names {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = c.ns.Unwatch(ctx, n, c.callback)
		cancel()
	}
}

// markDead sidelines ref in name's entry until DeadMemberTTL elapses.
func (c *GroupCache) markDead(name Name, ref orb.ObjectRef) {
	c.mu.Lock()
	e := c.entries[name.String()]
	if e != nil {
		e.dead[ref] = c.opts.Clock().Add(c.opts.DeadMemberTTL)
	}
	c.mu.Unlock()
	if e != nil {
		c.failovers.Add(1)
	}
}

// live returns name's members minus expired leases and sidelined
// members, in pushed order, plus the round-robin cursor value to use.
func (c *GroupCache) live(name Name) ([]orb.ObjectRef, uint64) {
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[name.String()]
	if e == nil {
		return nil, 0
	}
	out := make([]orb.ObjectRef, 0, len(e.members))
	for _, m := range e.members {
		if exp, ok := e.expiry[m.Ref]; ok && now.After(exp) {
			continue // lease lapsed and no push reached us: do not trust it
		}
		if until, ok := e.dead[m.Ref]; ok {
			if now.Before(until) {
				continue
			}
			delete(e.dead, m.Ref) // sideline expired: eligible again
		}
		out = append(out, m.Ref)
	}
	e.rr++
	return out, e.rr
}

// Members returns name's current full membership (pushed order).
func (c *GroupCache) Members(name Name) []Offer {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[name.String()]
	if e == nil {
		return nil
	}
	out := make([]Offer, len(e.members))
	copy(out, e.members)
	return out
}

// Epoch returns the registry epoch of name's cached view.
func (c *GroupCache) Epoch(name Name) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[name.String()]
	if e == nil {
		return 0
	}
	return e.epoch
}

// listenerServant receives ns_invalidate pushes for a GroupCache.
type listenerServant struct {
	cache *GroupCache
}

func (l *listenerServant) TypeID() string { return ListenerTypeID }

func (l *listenerServant) Invoke(sctx *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case opInvalidate:
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		epoch := in.GetUint64()
		leases, err := getLeases(in)
		if err != nil {
			return err
		}
		l.cache.apply(name, epoch, leases)
		return nil
	default:
		return orb.BadOperation(op)
	}
}

// GroupRef is one logical name spread over N live servants. It satisfies
// the ft layer's Resolver and Unbinder so a fault-tolerant proxy can run
// its whole recovery loop against pushed membership: Resolve picks
// locally, UnbindOffer/MarkDead sidelines locally — zero naming RPCs on
// the common failover path.
type GroupRef struct {
	cache  *GroupCache
	name   Name
	policy SpreadPolicy

	stickyMu sync.Mutex
	sticky   orb.ObjectRef
}

// Name returns the logical name this ref spreads.
func (g *GroupRef) Name() Name { return g.name }

// Pick returns a live member per the spreading policy, subscribing on
// first use. With an empty live membership it fails locally with
// NotFound — the same answer a resolve of a dead group would give, but
// without the RPC, which is what keeps whole-group death at O(replicas)
// naming traffic instead of O(clients).
func (g *GroupRef) Pick(ctx context.Context) (orb.ObjectRef, error) {
	if err := g.cache.ensureSubscribed(ctx, g.name); err != nil {
		return orb.ObjectRef{}, err
	}
	live, cursor := g.cache.live(g.name)
	if len(live) == 0 {
		return orb.ObjectRef{}, errNotFound(g.name)
	}
	switch g.policy {
	case SpreadSticky:
		g.stickyMu.Lock()
		defer g.stickyMu.Unlock()
		if !g.sticky.IsNil() {
			for _, ref := range live {
				if ref == g.sticky {
					return ref, nil
				}
			}
		}
		// No pin yet, or the pinned member is gone: fail over.
		g.sticky = live[int(cursor)%len(live)]
		return g.sticky, nil
	case SpreadWeighted:
		// Geometric head bias over winner-first pushed order: p(i) ~ 2^-i.
		g.cache.rngMu.Lock()
		defer g.cache.rngMu.Unlock()
		for i := 0; i < len(live)-1; i++ {
			if g.cache.rng.Float64() < 0.5 {
				return live[i], nil
			}
		}
		return live[len(live)-1], nil
	default: // SpreadRoundRobin
		return live[int(cursor)%len(live)], nil
	}
}

// Resolve is Pick under the ft Resolver signature. name must be the
// ref's own name (it is ignored otherwise — a GroupRef resolves exactly
// one logical name).
func (g *GroupRef) Resolve(ctx context.Context, name Name) (orb.ObjectRef, error) {
	return g.Pick(ctx)
}

// MarkDead sidelines ref locally (until DeadMemberTTL) so the next Pick
// fails over to a survivor, and drops a sticky pin on it. The
// authoritative removal arrives by push; marking is only the local
// fast path.
func (g *GroupRef) MarkDead(ref orb.ObjectRef) {
	g.cache.markDead(g.name, ref)
	g.stickyMu.Lock()
	if g.sticky == ref {
		g.sticky = orb.ObjectRef{}
	}
	g.stickyMu.Unlock()
}

// UnbindOffer satisfies the ft layer's Unbinder with a purely local
// MarkDead: the member's own lease lapse (or its host's unbind) is what
// removes it authoritatively, so recovery needs no naming RPC here.
func (g *GroupRef) UnbindOffer(ctx context.Context, name Name, ref orb.ObjectRef) error {
	g.MarkDead(ref)
	return nil
}

// Members returns the current full membership view.
func (g *GroupRef) Members() []Offer { return g.cache.Members(g.name) }

// Epoch returns the registry epoch of the cached view.
func (g *GroupRef) Epoch() uint64 { return g.cache.Epoch(g.name) }
