package naming

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/orb"
)

func ref(i int) orb.ObjectRef {
	return orb.ObjectRef{TypeID: "T", Addr: fmt.Sprintf("h%d:1", i), Key: fmt.Sprintf("k%d", i)}
}

func TestBindResolve(t *testing.T) {
	r := NewRegistry()
	n := NewName("calc")
	if err := r.Bind(n, ref(1)); err != nil {
		t.Fatal(err)
	}
	got, err := r.ResolveObject(n)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref(1) {
		t.Fatalf("resolve = %v", got)
	}
}

func TestBindDuplicateFails(t *testing.T) {
	r := NewRegistry()
	n := NewName("x")
	if err := r.Bind(n, ref(1)); err != nil {
		t.Fatal(err)
	}
	err := r.Bind(n, ref(2))
	if !orb.IsUserException(err, ExAlreadyBound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRebindReplaces(t *testing.T) {
	r := NewRegistry()
	n := NewName("x")
	if err := r.Rebind(n, ref(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Rebind(n, ref(2)); err != nil {
		t.Fatal(err)
	}
	got, _ := r.ResolveObject(n)
	if got != ref(2) {
		t.Fatalf("resolve = %v", got)
	}
}

func TestRebindOverContextFails(t *testing.T) {
	r := NewRegistry()
	if err := r.BindNewContext(NewName("ctx")); err != nil {
		t.Fatal(err)
	}
	err := r.Rebind(NewName("ctx"), ref(1))
	if !orb.IsUserException(err, ExNotContext) {
		t.Fatalf("err = %v", err)
	}
}

func TestHierarchicalBind(t *testing.T) {
	r := NewRegistry()
	if err := r.BindNewContext(NewName("apps")); err != nil {
		t.Fatal(err)
	}
	if err := r.BindNewContext(NewName("apps", "mdo")); err != nil {
		t.Fatal(err)
	}
	n := NewName("apps", "mdo", "solver")
	if err := r.Bind(n, ref(3)); err != nil {
		t.Fatal(err)
	}
	got, err := r.ResolveObject(n)
	if err != nil || got != ref(3) {
		t.Fatalf("resolve = %v, %v", got, err)
	}
}

func TestResolveThroughMissingContext(t *testing.T) {
	r := NewRegistry()
	_, err := r.ResolveObject(NewName("nope", "x"))
	if !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestResolveThroughNonContext(t *testing.T) {
	r := NewRegistry()
	if err := r.Bind(NewName("leaf"), ref(1)); err != nil {
		t.Fatal(err)
	}
	_, err := r.ResolveObject(NewName("leaf", "x"))
	if !orb.IsUserException(err, ExNotContext) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnbind(t *testing.T) {
	r := NewRegistry()
	n := NewName("x")
	if err := r.Bind(n, ref(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Unbind(n); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ResolveObject(n); !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := r.Unbind(n); !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("double unbind err = %v", err)
	}
}

func TestInvalidNames(t *testing.T) {
	r := NewRegistry()
	if err := r.Bind(Name{}, ref(1)); !orb.IsUserException(err, ExInvalidName) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.ResolveObject(Name{{ID: ""}}); !orb.IsUserException(err, ExInvalidName) {
		t.Fatalf("err = %v", err)
	}
}

func TestKindDistinguishesBindings(t *testing.T) {
	r := NewRegistry()
	a := Name{{ID: "svc", Kind: "v1"}}
	b := Name{{ID: "svc", Kind: "v2"}}
	if err := r.Bind(a, ref(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(b, ref(2)); err != nil {
		t.Fatal(err)
	}
	ra, _ := r.ResolveObject(a)
	rb, _ := r.ResolveObject(b)
	if ra != ref(1) || rb != ref(2) {
		t.Fatal("kind not distinguishing")
	}
}

func TestGroupBindOfferAndResolve(t *testing.T) {
	r := NewRegistry()
	n := NewName("workers")
	for i := 0; i < 3; i++ {
		if err := r.BindOffer(n, Offer{Ref: ref(i), Host: fmt.Sprintf("node%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	offers, err := r.Offers(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 3 {
		t.Fatalf("offers = %d", len(offers))
	}
	for i, o := range offers {
		if o.Ref != ref(i) || o.Host != fmt.Sprintf("node%d", i) {
			t.Fatalf("offer %d = %+v", i, o)
		}
	}
}

func TestBindOfferDuplicateRefFails(t *testing.T) {
	r := NewRegistry()
	n := NewName("w")
	if err := r.BindOffer(n, Offer{Ref: ref(1)}); err != nil {
		t.Fatal(err)
	}
	if err := r.BindOffer(n, Offer{Ref: ref(1)}); !orb.IsUserException(err, ExAlreadyBound) {
		t.Fatalf("err = %v", err)
	}
}

func TestBindOfferOverObjectFails(t *testing.T) {
	r := NewRegistry()
	n := NewName("x")
	if err := r.Bind(n, ref(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.BindOffer(n, Offer{Ref: ref(2)}); !orb.IsUserException(err, ExAlreadyBound) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnbindOffer(t *testing.T) {
	r := NewRegistry()
	n := NewName("w")
	for i := 0; i < 2; i++ {
		if err := r.BindOffer(n, Offer{Ref: ref(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.UnbindOffer(n, ref(0)); err != nil {
		t.Fatal(err)
	}
	offers, _ := r.Offers(n)
	if len(offers) != 1 || offers[0].Ref != ref(1) {
		t.Fatalf("offers = %+v", offers)
	}
	// Removing the last offer removes the binding.
	if err := r.UnbindOffer(n, ref(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Offers(n); !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnbindOfferMissing(t *testing.T) {
	r := NewRegistry()
	n := NewName("w")
	if err := r.BindOffer(n, Offer{Ref: ref(1)}); err != nil {
		t.Fatal(err)
	}
	if err := r.UnbindOffer(n, ref(9)); !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOffersOnObjectBinding(t *testing.T) {
	r := NewRegistry()
	n := NewName("single")
	if err := r.Bind(n, ref(7)); err != nil {
		t.Fatal(err)
	}
	offers, err := r.Offers(n)
	if err != nil || len(offers) != 1 || offers[0].Ref != ref(7) {
		t.Fatalf("offers = %+v, %v", offers, err)
	}
}

func TestList(t *testing.T) {
	r := NewRegistry()
	if err := r.Bind(NewName("b"), ref(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.BindNewContext(NewName("a")); err != nil {
		t.Fatal(err)
	}
	if err := r.BindOffer(NewName("c"), Offer{Ref: ref(2)}); err != nil {
		t.Fatal(err)
	}
	bindings, err := r.List(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 3 {
		t.Fatalf("bindings = %d", len(bindings))
	}
	// Sorted: a (context), b (object), c (group).
	wantTypes := []BindingType{BindContext, BindObject, BindGroup}
	wantNames := []string{"a", "b", "c"}
	for i, b := range bindings {
		if b.Name.String() != wantNames[i] || b.Type != wantTypes[i] {
			t.Fatalf("binding %d = %+v", i, b)
		}
	}
}

func TestListSubContext(t *testing.T) {
	r := NewRegistry()
	if err := r.BindNewContext(NewName("sub")); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(NewName("sub", "x"), ref(1)); err != nil {
		t.Fatal(err)
	}
	bindings, err := r.List(NewName("sub"))
	if err != nil || len(bindings) != 1 || bindings[0].Name.String() != "x" {
		t.Fatalf("list sub = %+v, %v", bindings, err)
	}
	if _, err := r.List(NewName("missing")); !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				n := NewName(fmt.Sprintf("svc-%d-%d", g, i))
				if err := r.Bind(n, ref(i)); err != nil {
					t.Errorf("bind: %v", err)
					return
				}
				if _, err := r.ResolveObject(n); err != nil {
					t.Errorf("resolve: %v", err)
					return
				}
				if err := r.BindOffer(NewName("shared"), Offer{Ref: orb.ObjectRef{Addr: n.String(), Key: "k"}}); err != nil {
					t.Errorf("offer: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	offers, err := r.Offers(NewName("shared"))
	if err != nil || len(offers) != 800 {
		t.Fatalf("offers = %d, %v", len(offers), err)
	}
}

func TestRoundRobinSelector(t *testing.T) {
	sel := RoundRobinSelector()
	offers := []Offer{{Host: "a"}, {Host: "b"}, {Host: "c"}}
	n := NewName("w")
	got := make([]string, 6)
	for i := range got {
		o, err := sel.Select(n, offers)
		if err != nil {
			t.Fatal(err)
		}
		got[i] = o.Host
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin order %v", got)
		}
	}
}

func TestRoundRobinPerNameState(t *testing.T) {
	sel := RoundRobinSelector()
	offers := []Offer{{Host: "a"}, {Host: "b"}}
	o1, _ := sel.Select(NewName("x"), offers)
	o2, _ := sel.Select(NewName("y"), offers)
	if o1.Host != "a" || o2.Host != "a" {
		t.Fatal("per-name counters not independent")
	}
}

func TestRandomSelectorInRange(t *testing.T) {
	sel := RandomSelector(nil)
	offers := []Offer{{Host: "a"}, {Host: "b"}, {Host: "c"}}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		o, err := sel.Select(NewName("w"), offers)
		if err != nil {
			t.Fatal(err)
		}
		seen[o.Host] = true
	}
	if len(seen) < 2 {
		t.Fatalf("random selector not spreading: %v", seen)
	}
}

func TestFirstSelector(t *testing.T) {
	sel := FirstSelector()
	o, err := sel.Select(NewName("w"), []Offer{{Host: "first"}, {Host: "second"}})
	if err != nil || o.Host != "first" {
		t.Fatalf("first selector = %+v, %v", o, err)
	}
}
