package naming

import (
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/obs"
	"repro/internal/orb"
)

// TypeID is the repository id of the naming service interface.
const TypeID = "IDL:repro/CosNaming/NamingContext:1.0"

// DefaultKey is the conventional object key of a root naming context
// ("NameService" initial reference analogue).
const DefaultKey = "NameService"

// Selector chooses one offer from a group binding at resolve time. The
// plain selector reproduces an unmodified naming service; the Winner
// selector in internal/core implements the paper's load distribution.
// Implementations must be safe for concurrent use.
type Selector interface {
	// Select picks an offer for name. It is only called with a non-empty
	// offer slice.
	Select(name Name, offers []Offer) (Offer, error)
}

// SelectorFunc adapts a function to the Selector interface.
type SelectorFunc func(name Name, offers []Offer) (Offer, error)

// Select implements Selector.
func (f SelectorFunc) Select(name Name, offers []Offer) (Offer, error) { return f(name, offers) }

// Decision explains why a selector chose an offer, for tracing.
type Decision struct {
	// Reason is a short stable token ("winner-best", "round-robin",
	// "fallback-no-hosts", ...) recorded on the resolve span.
	Reason string
}

// ExplainingSelector is an optional Selector extension: selectors that
// can say why a host won implement it, and the naming servant attaches
// the reason to the live trace span on every group resolve.
type ExplainingSelector interface {
	Selector
	// SelectExplain is Select plus the reasoning behind the choice.
	SelectExplain(name Name, offers []Offer) (Offer, Decision, error)
}

// FirstSelector always returns the first (oldest) offer: the most naive
// baseline — every client lands on the registration-order head.
func FirstSelector() Selector {
	return SelectorFunc(func(_ Name, offers []Offer) (Offer, error) {
		return offers[0], nil
	})
}

// Servant exposes a Registry as an ORB service. Group resolution is
// delegated to the configured Selector (FirstSelector when nil).
type Servant struct {
	reg *Registry
	sel Selector
	hub *Hub

	resolves atomic.Uint64
	watchReq atomic.Uint64
}

// NewServant wraps reg; sel may be nil for the plain baseline.
func NewServant(reg *Registry, sel Selector) *Servant {
	if sel == nil {
		sel = FirstSelector()
	}
	return &Servant{reg: reg, sel: sel}
}

// Registry returns the underlying naming tree.
func (s *Servant) Registry() *Registry { return s.reg }

// SetHub enables the watch/unwatch/list_watches operations, serving the
// push-based invalidation channel through h. Without a hub those
// operations fail with BAD_OPERATION (pre-subscription servers).
func (s *Servant) SetHub(h *Hub) { s.hub = h }

// Resolves returns how many resolve requests this servant has served —
// the number the push protocol exists to keep flat under failover.
func (s *Servant) Resolves() uint64 { return s.resolves.Load() }

// WatchRequests returns how many watch registrations this servant has
// served (initial subscriptions plus re-watches).
func (s *Servant) WatchRequests() uint64 { return s.watchReq.Load() }

// TypeID implements orb.Servant.
func (s *Servant) TypeID() string { return TypeID }

// Operation names of the naming service wire contract.
const (
	opBind           = "bind"
	opRebind         = "rebind"
	opUnbind         = "unbind"
	opResolve        = "resolve"
	opBindNewContext = "bind_new_context"
	opList           = "list"
	opBindOffer      = "bind_offer"
	opUnbindOffer    = "unbind_offer"
	opListOffers     = "list_offers"
	opBindRemote     = "bind_remote_context"
	opRenewLease     = "renew_lease"
	opListLeases     = "list_leases"
	opSyncState      = "sync_state"
)

// Invoke implements orb.Servant.
func (s *Servant) Invoke(sctx *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	switch op {
	case opBind, opRebind:
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		var ref orb.ObjectRef
		if err := ref.UnmarshalCDR(in); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		if op == opBind {
			return wireErr(s.reg.Bind(name, ref))
		}
		return wireErr(s.reg.Rebind(name, ref))

	case opUnbind:
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		return wireErr(s.reg.Unbind(name))

	case opResolve:
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		s.resolves.Add(1)
		chosen, err := s.resolve(sctx, name)
		if err != nil {
			return wireErr(err)
		}
		chosen.Ref.MarshalCDR(out)
		// Trailing lease TTL: pre-lease clients stop reading after the
		// reference (reply decoding tolerates trailing bytes); lease-aware
		// clients (ResolveLease) use it to age their degraded-mode cache.
		out.PutInt64(int64(chosen.LeaseTTL))
		return nil

	case opBindNewContext:
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		return wireErr(s.reg.BindNewContext(name))

	case opList:
		var name Name
		if n := in.GetUint32(); n > 0 && in.Err() == nil {
			// Re-decode with the count already consumed: rebuild by hand.
			name = make(Name, 0, n)
			for i := uint32(0); i < n; i++ {
				name = append(name, Component{ID: in.GetString(), Kind: in.GetString()})
			}
		}
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		bindings, err := s.reg.List(name)
		if err != nil {
			return wireErr(err)
		}
		out.PutUint32(uint32(len(bindings)))
		for _, b := range bindings {
			b.Name.MarshalCDR(out)
			out.PutUint32(uint32(b.Type))
		}
		return nil

	case opBindOffer:
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		var ref orb.ObjectRef
		if err := ref.UnmarshalCDR(in); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		host := in.GetString()
		ttl := time.Duration(in.GetInt64())
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		return wireErr(s.reg.BindOffer(name, Offer{Ref: ref, Host: host, LeaseTTL: ttl}))

	case opRenewLease:
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		var ref orb.ObjectRef
		if err := ref.UnmarshalCDR(in); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		ttl := time.Duration(in.GetInt64())
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		return wireErr(s.reg.RenewLease(name, ref, ttl))

	case opListLeases:
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		leases, err := s.reg.Leases(name)
		if err != nil {
			return wireErr(err)
		}
		putLeases(out, leases)
		return nil

	case opSyncState:
		snap := in.GetBytes()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		adopted, err := s.reg.AdoptSnapshot(snap)
		if err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		out.PutBool(adopted)
		out.PutUint64(s.reg.Epoch())
		return nil

	case opBindRemote:
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		var ref orb.ObjectRef
		if err := ref.UnmarshalCDR(in); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		return wireErr(s.reg.BindRemoteContext(name, ref))

	case opUnbindOffer:
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		var ref orb.ObjectRef
		if err := ref.UnmarshalCDR(in); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		return wireErr(s.reg.UnbindOffer(name, ref))

	case opListOffers:
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		offers, err := s.reg.Offers(name)
		if err != nil {
			return wireErr(err)
		}
		out.PutUint32(uint32(len(offers)))
		for _, o := range offers {
			o.Ref.MarshalCDR(out)
			out.PutString(o.Host)
		}
		return nil

	case opWatch:
		if s.hub == nil {
			return orb.BadOperation(op)
		}
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		var callback orb.ObjectRef
		if err := callback.UnmarshalCDR(in); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		sinceEpoch := in.GetUint64()
		if err := in.Err(); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		s.watchReq.Add(1)
		leases, epoch := s.hub.Watch(name, callback, sinceEpoch)
		obs.SpanFromContext(sctx.Context()).AddEvent("naming.watched",
			obs.String("name", name.String()), obs.String("callback", callback.Addr))
		out.PutUint64(epoch)
		putLeases(out, leases)
		return nil

	case opUnwatch:
		if s.hub == nil {
			return orb.BadOperation(op)
		}
		name, err := DecodeName(in)
		if err != nil {
			return errInvalidName(err.Error())
		}
		var callback orb.ObjectRef
		if err := callback.UnmarshalCDR(in); err != nil {
			return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
		}
		s.hub.Unwatch(name, callback)
		return nil

	case opListWatches:
		if s.hub == nil {
			return orb.BadOperation(op)
		}
		infos := s.hub.Watches()
		out.PutUint32(uint32(len(infos)))
		for _, wi := range infos {
			wi.Name.MarshalCDR(out)
			out.PutUint32(uint32(wi.Watchers))
		}
		return nil

	default:
		return orb.BadOperation(op)
	}
}

// resolve implements the load-distribution-aware resolve: object bindings
// return directly; group bindings go through the Selector, seeing only
// offers whose lease (if any) is still live. The winning host and the
// selector's reasoning land on the dispatch's trace span.
func (s *Servant) resolve(sctx *orb.ServerContext, name Name) (Offer, error) {
	offers, err := s.reg.LiveOffers(name)
	if err != nil {
		return Offer{}, err
	}
	span := obs.SpanFromContext(sctx.Context())
	if len(offers) == 1 {
		span.AddEvent("naming.selected",
			obs.String("name", name.String()), obs.String("host", offers[0].Host),
			obs.String("addr", offers[0].Ref.Addr), obs.String("reason", ReasonSingleOffer))
		return offers[0], nil
	}
	var chosen Offer
	decision := Decision{Reason: "selector"}
	if ex, ok := s.sel.(ExplainingSelector); ok {
		chosen, decision, err = ex.SelectExplain(name, offers)
	} else {
		chosen, err = s.sel.Select(name, offers)
	}
	if err != nil {
		return Offer{}, err
	}
	span.AddEvent("naming.selected",
		obs.String("name", name.String()), obs.String("host", chosen.Host),
		obs.String("addr", chosen.Ref.Addr), obs.String("reason", decision.Reason))
	return chosen, nil
}
