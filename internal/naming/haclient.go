package naming

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/orb"
)

// HAClient is the replica-aware naming stub: it wraps one naming.Client
// per nameserver replica behind per-endpoint circuit breakers and fails
// over on transport-class errors (COMM_FAILURE, timeouts, TRANSIENT,
// OBJECT_NOT_EXIST). The first healthy endpoint becomes sticky — all
// clients configured with the same endpoint ordering converge on the
// same primary, which keeps writes serialised on one replica while the
// others trail by a replication period.
//
// Resolve results feed a bounded cache; when every replica is down,
// Resolve serves the last-known reference from that cache in an explicit
// degraded mode (logged, counted) instead of erroring — the paper's
// recovery loop can then still reach a live server even while the whole
// control plane restarts.
//
// HAClient satisfies the same call surface the ft layer needs from
// naming.Client (Resolver, Unbinder, OfferLister, LeaseBinder).
type HAClient struct {
	endpoints []*haEndpoint
	opts      HAOptions

	primary atomic.Int64
	// onFailover, when set, runs (in its own goroutine) every time the
	// sticky primary re-pins to a different endpoint — the signal watch
	// subscribers use to re-register on the new replica.
	onFailover atomic.Value // func(addr string)

	cacheMu  sync.Mutex
	cache    map[string]haCacheEntry
	cacheFF  []string // FIFO eviction order
	degraded atomic.Bool

	failovers      atomic.Uint64
	degradedServes atomic.Uint64
	staleServes    atomic.Uint64
	resolveErrors  atomic.Uint64
}

// haCacheEntry is one cached resolve result, aged by the offer's lease.
type haCacheEntry struct {
	ref orb.ObjectRef
	ttl time.Duration // lease TTL at resolve time (0: leaseless)
	at  time.Time     // when the entry was cached
}

// haEndpoint is one replica with its breaker.
type haEndpoint struct {
	client  *Client
	breaker *orb.Breaker
	addr    string
}

// HAOptions tune an HAClient.
type HAOptions struct {
	// PerTryTimeout bounds one attempt against one endpoint, so a hung
	// replica costs bounded time before failover (default 2s).
	PerTryTimeout time.Duration
	// Breaker configures the per-endpoint circuit breakers.
	Breaker orb.BreakerOptions
	// CacheSize bounds the resolve cache (default 256 names).
	CacheSize int
	// Logger receives failover/degraded diagnostics (default
	// slog.Default()).
	Logger *slog.Logger
	// Clock overrides the cache-aging clock (tests; default time.Now).
	Clock func() time.Time
}

// HAStats is a snapshot of the client's failover counters.
type HAStats struct {
	// Failovers counts endpoint attempts abandoned for the next replica.
	Failovers uint64
	// DegradedServes counts resolves served from the cache because no
	// replica answered.
	DegradedServes uint64
	// StaleServes counts degraded serves of cache entries older than the
	// lease TTL the offer carried when cached: the reference may point at
	// a server whose lease has since lapsed. Such entries are still served
	// (availability over freshness while the whole control plane is down)
	// but never silently — each one is counted here and logged.
	StaleServes uint64
	// ResolveErrors counts resolves that failed outright: no replica
	// answered and the cache had nothing (transport-class exhaustion
	// only; authoritative answers like NotFound are not errors).
	ResolveErrors uint64
}

// NewHAClient builds an HA naming stub over the given replica refs (at
// least one). Order matters: earlier refs are preferred as primary.
func NewHAClient(o *orb.ORB, refs []orb.ObjectRef, opts HAOptions) (*HAClient, error) {
	if len(refs) == 0 {
		return nil, errors.New("naming: HAClient needs at least one endpoint")
	}
	if opts.PerTryTimeout <= 0 {
		opts.PerTryTimeout = 2 * time.Second
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = 256
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	h := &HAClient{opts: opts, cache: make(map[string]haCacheEntry)}
	for _, ref := range refs {
		h.endpoints = append(h.endpoints, &haEndpoint{
			client:  NewClient(o, ref),
			breaker: orb.NewBreaker(opts.Breaker),
			addr:    ref.Addr,
		})
	}
	return h, nil
}

// Stats returns the current failover counters.
func (h *HAClient) Stats() HAStats {
	return HAStats{
		Failovers:      h.failovers.Load(),
		DegradedServes: h.degradedServes.Load(),
		StaleServes:    h.staleServes.Load(),
		ResolveErrors:  h.resolveErrors.Load(),
	}
}

// SetOnFailover installs fn to run (in its own goroutine) whenever the
// sticky primary re-pins to a different endpoint, with the new primary's
// address. Watch subscribers hook this to re-register their watches on
// the replica that is now answering.
func (h *HAClient) SetOnFailover(fn func(addr string)) {
	h.onFailover.Store(fn)
}

// Degraded reports whether the last resolve was served from the cache
// with every replica unreachable.
func (h *HAClient) Degraded() bool { return h.degraded.Load() }

// Primary returns the address of the currently preferred endpoint.
func (h *HAClient) Primary() string {
	return h.endpoints[int(h.primary.Load())%len(h.endpoints)].addr
}

// ExportMetrics registers the failover counters with an obs registry
// under the names the acceptance dashboards scrape.
func (h *HAClient) ExportMetrics(reg *obs.Registry) {
	reg.NewCounterFunc("naming_failovers_total",
		"Nameserver endpoint attempts abandoned for the next replica.",
		func() uint64 { return h.failovers.Load() })
	reg.NewCounterFunc("naming_degraded_serves_total",
		"Resolves served from the client-side cache with all replicas down.",
		func() uint64 { return h.degradedServes.Load() })
	reg.NewCounterFunc("naming_stale_serves_total",
		"Degraded serves of cached references older than their lease TTL.",
		func() uint64 { return h.staleServes.Load() })
	reg.NewCounterFunc("naming_resolve_errors_total",
		"Resolves that failed with no replica reachable and no cached reference.",
		func() uint64 { return h.resolveErrors.Load() })
	reg.NewGaugeFunc("naming_degraded",
		"1 while the naming client is serving cached references in degraded mode.",
		func() float64 {
			if h.degraded.Load() {
				return 1
			}
			return 0
		})
}

// HealthProbe is the naming client's component probe for obs.Health:
// unhealthy while serving cached references in degraded mode (every
// replica down), degraded detail while some replica breakers are open.
func (h *HAClient) HealthProbe() error {
	if h.degraded.Load() {
		return errors.New("all nameserver replicas down, serving cached references")
	}
	open := 0
	for _, e := range h.endpoints {
		if e.breaker.State() == orb.BreakerOpen {
			open++
		}
	}
	if open > 0 {
		return fmt.Errorf("%d/%d replica breakers open", open, len(h.endpoints))
	}
	return nil
}

// failoverErr classifies err as transport-class: worth trying the next
// replica. Authoritative answers (user exceptions such as NotFound,
// marshal errors, cancellations) must NOT fail over — a healthy replica
// said no, and asking another would at best duplicate the answer.
func failoverErr(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true // per-try timeout: the endpoint is unresponsive
	}
	return orb.IsCommFailure(err) ||
		orb.IsSystemException(err, orb.ExTimeout) ||
		orb.IsSystemException(err, orb.ExTransient) ||
		orb.IsSystemException(err, orb.ExObjectNotExist)
}

// errAllReplicasDown is returned when no endpoint produced an answer. It
// is a COMM_FAILURE so upper layers (ft proxies, Caller retry
// classifiers) treat it exactly like a single dead nameserver.
func errAllReplicasDown(last error) error {
	detail := "naming: no replica reachable"
	if last != nil {
		detail = fmt.Sprintf("%s (last: %v)", detail, last)
	}
	return &orb.SystemException{Kind: orb.ExCommFailure, Detail: detail}
}

// do runs f against replicas starting at the sticky primary, failing
// over on transport errors, honouring breakers, and re-pinning the
// primary to whichever endpoint answered.
func (h *HAClient) do(ctx context.Context, op string, f func(ctx context.Context, c *Client) error) error {
	n := len(h.endpoints)
	start := int(h.primary.Load()) % n
	var last error
	tried := 0
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			if last != nil {
				return errAllReplicasDown(last)
			}
			return ctx.Err()
		}
		idx := (start + i) % n
		ep := h.endpoints[idx]
		if !ep.breaker.Allow() {
			continue
		}
		tried++
		cctx, cancel := context.WithTimeout(ctx, h.opts.PerTryTimeout)
		err := f(cctx, ep.client)
		cancel()
		if err == nil || !failoverErr(err) {
			// Success, or an authoritative answer from a live replica.
			ep.breaker.Success()
			if prev := h.primary.Swap(int64(idx)); int(prev)%n != idx {
				if fn, ok := h.onFailover.Load().(func(addr string)); ok && fn != nil {
					go fn(ep.addr)
				}
			}
			if h.degraded.CompareAndSwap(true, false) {
				h.opts.Logger.Info("naming: control plane reachable again, leaving degraded mode", "endpoint", ep.addr)
			}
			return err
		}
		ep.breaker.Failure()
		h.failovers.Add(1)
		h.opts.Logger.Warn("naming: endpoint failed, trying next replica",
			"op", op, "endpoint", ep.addr, "err", err)
		last = err
	}
	if tried == 0 && last == nil {
		// Every breaker is open and no cooldown has elapsed: same outcome
		// as all replicas refusing, without paying connect timeouts.
		return errAllReplicasDown(errors.New("all endpoint breakers open"))
	}
	return errAllReplicasDown(last)
}

// Resolve resolves name through the first healthy replica; with all
// replicas down it falls back to the last-known reference in degraded
// mode. Successful resolves refresh the cache.
func (h *HAClient) Resolve(ctx context.Context, name Name) (orb.ObjectRef, error) {
	var ref orb.ObjectRef
	var ttl time.Duration
	err := h.do(ctx, opResolve, func(ctx context.Context, c *Client) error {
		var e error
		ref, ttl, e = c.ResolveLease(ctx, name)
		return e
	})
	if err == nil {
		h.cachePut(name, ref, ttl)
		return ref, nil
	}
	if failoverErr(err) {
		if cached, stale, ok := h.cacheGet(name); ok {
			h.degradedServes.Add(1)
			if stale {
				// The entry outlived the lease TTL it was cached with: the
				// server behind it may have lost its registration since.
				// Serve it anyway — it is the only lead we have with the
				// whole control plane down — but flag it.
				h.staleServes.Add(1)
				h.opts.Logger.Warn("naming: serving cached reference past its lease TTL",
					"name", name.String(), "addr", cached.Addr)
			}
			if h.degraded.CompareAndSwap(false, true) {
				h.opts.Logger.Warn("naming: all replicas down, serving cached references (degraded mode)")
			}
			return cached, nil
		}
		h.resolveErrors.Add(1)
	}
	return orb.ObjectRef{}, err
}

func (h *HAClient) cachePut(name Name, ref orb.ObjectRef, ttl time.Duration) {
	k := name.String()
	h.cacheMu.Lock()
	defer h.cacheMu.Unlock()
	if _, ok := h.cache[k]; !ok {
		h.cacheFF = append(h.cacheFF, k)
		for len(h.cacheFF) > h.opts.CacheSize {
			delete(h.cache, h.cacheFF[0])
			h.cacheFF = h.cacheFF[1:]
		}
	}
	h.cache[k] = haCacheEntry{ref: ref, ttl: ttl, at: h.opts.Clock()}
}

// cacheGet returns the cached reference for name and whether it has
// outlived the lease TTL it was resolved with (leaseless entries never
// go stale).
func (h *HAClient) cacheGet(name Name) (ref orb.ObjectRef, stale, ok bool) {
	h.cacheMu.Lock()
	defer h.cacheMu.Unlock()
	ent, ok := h.cache[name.String()]
	if !ok {
		return orb.ObjectRef{}, false, false
	}
	stale = ent.ttl > 0 && h.opts.Clock().After(ent.at.Add(ent.ttl))
	return ent.ref, stale, true
}

// The remaining operations are thin failover wrappers around the
// corresponding naming.Client calls.

// Bind binds ref under name.
func (h *HAClient) Bind(ctx context.Context, name Name, ref orb.ObjectRef) error {
	return h.do(ctx, opBind, func(ctx context.Context, c *Client) error { return c.Bind(ctx, name, ref) })
}

// Rebind binds ref under name, replacing an existing object binding.
func (h *HAClient) Rebind(ctx context.Context, name Name, ref orb.ObjectRef) error {
	return h.do(ctx, opRebind, func(ctx context.Context, c *Client) error { return c.Rebind(ctx, name, ref) })
}

// Unbind removes the binding at name.
func (h *HAClient) Unbind(ctx context.Context, name Name) error {
	return h.do(ctx, opUnbind, func(ctx context.Context, c *Client) error { return c.Unbind(ctx, name) })
}

// BindNewContext creates a sub-context at name.
func (h *HAClient) BindNewContext(ctx context.Context, name Name) error {
	return h.do(ctx, opBindNewContext, func(ctx context.Context, c *Client) error { return c.BindNewContext(ctx, name) })
}

// List returns the bindings in the context at name.
func (h *HAClient) List(ctx context.Context, name Name) ([]Binding, error) {
	var out []Binding
	err := h.do(ctx, opList, func(ctx context.Context, c *Client) error {
		var e error
		out, e = c.List(ctx, name)
		return e
	})
	return out, err
}

// BindOffer adds a leaseless (ref, host) offer to the group at name.
func (h *HAClient) BindOffer(ctx context.Context, name Name, ref orb.ObjectRef, host string) error {
	return h.BindOfferLease(ctx, name, ref, host, 0)
}

// BindOfferLease adds an offer with a lease TTL (see Client.BindOfferLease).
func (h *HAClient) BindOfferLease(ctx context.Context, name Name, ref orb.ObjectRef, host string, ttl time.Duration) error {
	return h.do(ctx, opBindOffer, func(ctx context.Context, c *Client) error {
		return c.BindOfferLease(ctx, name, ref, host, ttl)
	})
}

// RenewLease extends the lease on the offer with reference ref at name.
func (h *HAClient) RenewLease(ctx context.Context, name Name, ref orb.ObjectRef, ttl time.Duration) error {
	return h.do(ctx, opRenewLease, func(ctx context.Context, c *Client) error {
		return c.RenewLease(ctx, name, ref, ttl)
	})
}

// UnbindOffer removes the offer with reference ref from the group at name.
func (h *HAClient) UnbindOffer(ctx context.Context, name Name, ref orb.ObjectRef) error {
	return h.do(ctx, opUnbindOffer, func(ctx context.Context, c *Client) error {
		return c.UnbindOffer(ctx, name, ref)
	})
}

// ListOffers returns the group bound at name.
func (h *HAClient) ListOffers(ctx context.Context, name Name) ([]Offer, error) {
	var out []Offer
	err := h.do(ctx, opListOffers, func(ctx context.Context, c *Client) error {
		var e error
		out, e = c.ListOffers(ctx, name)
		return e
	})
	return out, err
}

// ListLeases returns the offers at name with their remaining lease time.
func (h *HAClient) ListLeases(ctx context.Context, name Name) ([]OfferLease, error) {
	var out []OfferLease
	err := h.do(ctx, opListLeases, func(ctx context.Context, c *Client) error {
		var e error
		out, e = c.ListLeases(ctx, name)
		return e
	})
	return out, err
}

// Watch registers callback for membership pushes about name on the first
// healthy replica (see Client.Watch). Combine with SetOnFailover to
// re-register when the primary changes: a watch lives on exactly one
// replica, so after failover the new primary must learn it again.
func (h *HAClient) Watch(ctx context.Context, name Name, callback orb.ObjectRef, sinceEpoch uint64) ([]OfferLease, uint64, error) {
	var out []OfferLease
	var epoch uint64
	err := h.do(ctx, opWatch, func(ctx context.Context, c *Client) error {
		var e error
		out, epoch, e = c.Watch(ctx, name, callback, sinceEpoch)
		return e
	})
	return out, epoch, err
}

// Unwatch removes callback's subscription for name.
func (h *HAClient) Unwatch(ctx context.Context, name Name, callback orb.ObjectRef) error {
	return h.do(ctx, opUnwatch, func(ctx context.Context, c *Client) error {
		return c.Unwatch(ctx, name, callback)
	})
}

// ListWatches returns the primary replica's watch table.
func (h *HAClient) ListWatches(ctx context.Context) ([]WatchInfo, error) {
	var out []WatchInfo
	err := h.do(ctx, opListWatches, func(ctx context.Context, c *Client) error {
		var e error
		out, e = c.ListWatches(ctx)
		return e
	})
	return out, err
}

var _ LeaseBinder = (*HAClient)(nil)
var _ WatchBinder = (*HAClient)(nil)
var _ WatchBinder = (*Client)(nil)
