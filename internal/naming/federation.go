package naming

import (
	"fmt"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// Federation: a context in one naming server's tree may be a *remote*
// context — an object reference to a NamingContext served elsewhere.
// Resolution that reaches a remote context cannot continue locally; the
// server tells the client where to go on with the rest of the name, and
// the client stub re-issues the operation there (bounded, to survive
// cycles). This is how CosNaming graphs span naming servers.

// ExFederated is the user exception carrying the continuation: the remote
// context's reference plus the unresolved remainder of the name.
const ExFederated = "IDL:repro/CosNaming/Federated:1.0"

// maxFederationHops bounds cross-server resolution chains.
const maxFederationHops = 8

// federatedError is the internal signal that resolution must continue at
// a remote naming context.
type federatedError struct {
	Ref  orb.ObjectRef
	Rest Name
}

func (e *federatedError) Error() string {
	return fmt.Sprintf("naming: continue at %v with %q", e.Ref, e.Rest)
}

// toUser converts the signal to its wire form.
func (e *federatedError) toUser() *orb.UserException {
	enc := cdr.NewEncoder(64)
	e.Ref.MarshalCDR(enc)
	e.Rest.MarshalCDR(enc)
	return &orb.UserException{RepoID: ExFederated, Detail: e.Error(), Data: enc.Bytes()}
}

// decodeFederated parses the wire form; ok is false for other exceptions.
func decodeFederated(err error) (orb.ObjectRef, Name, bool) {
	ue, isUE := err.(*orb.UserException)
	if !isUE || ue.RepoID != ExFederated {
		return orb.ObjectRef{}, nil, false
	}
	d := cdr.NewDecoder(ue.Data)
	var ref orb.ObjectRef
	if err := ref.UnmarshalCDR(d); err != nil {
		return orb.ObjectRef{}, nil, false
	}
	rest, err2 := DecodeName(d)
	if err2 != nil {
		return orb.ObjectRef{}, nil, false
	}
	return ref, rest, true
}

// BindRemoteContext mounts the naming context served at ref under n.
// Resolution passing through n continues at the remote server.
func (r *Registry) BindRemoteContext(n Name, ref orb.ObjectRef) error {
	if err := n.Validate(); err != nil {
		return errInvalidName(err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	node, last, err := r.walk(n)
	if err != nil {
		return err
	}
	if _, ok := node.entries[key(last)]; ok {
		return errAlreadyBound(n)
	}
	node.entries[key(last)] = &entry{typ: BindRemote, remote: ref}
	return nil
}

// remoteSignal builds the continuation for a traversal that hit a remote
// mount after consuming `consumed` components of n.
func remoteSignal(e *entry, n Name, consumed int) error {
	rest := make(Name, len(n)-consumed)
	copy(rest, n[consumed:])
	return &federatedError{Ref: e.remote, Rest: rest}
}

// wireErr converts the internal federation signal to its wire exception;
// all other errors pass through. Every servant-side registry result goes
// through it.
func wireErr(err error) error {
	if fe, ok := err.(*federatedError); ok {
		return fe.toUser()
	}
	return err
}
