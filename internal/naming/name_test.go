package naming

import (
	"testing"
	"testing/quick"

	"repro/internal/cdr"
)

func TestNameString(t *testing.T) {
	cases := []struct {
		name Name
		want string
	}{
		{NewName("a"), "a"},
		{NewName("a", "b", "c"), "a/b/c"},
		{Name{{ID: "svc", Kind: "obj"}}, "svc.obj"},
		{Name{{ID: "a/b", Kind: "c.d"}}, `a\/b.c\.d`},
		{Name{{ID: `back\slash`}}, `back\\slash`},
	}
	for _, c := range cases {
		if got := c.name.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestParseName(t *testing.T) {
	cases := []struct {
		in   string
		want Name
	}{
		{"a", NewName("a")},
		{"a/b/c", NewName("a", "b", "c")},
		{"svc.obj", Name{{ID: "svc", Kind: "obj"}}},
		{`a\/b.c\.d`, Name{{ID: "a/b", Kind: "c.d"}}},
		{"x.", Name{{ID: "x", Kind: ""}}},
	}
	for _, c := range cases {
		got, err := ParseName(c.in)
		if err != nil {
			t.Errorf("ParseName(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want.String() || len(got) != len(c.want) {
			t.Errorf("ParseName(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseNameErrors(t *testing.T) {
	for _, in := range []string{"", "/", "a//b", "a.b.c", `a\`, "/a"} {
		if _, err := ParseName(in); err == nil {
			t.Errorf("ParseName(%q) succeeded", in)
		}
	}
}

func TestNameValidate(t *testing.T) {
	if err := (Name{}).Validate(); err == nil {
		t.Error("empty name validated")
	}
	if err := (Name{{ID: ""}}).Validate(); err == nil {
		t.Error("empty id validated")
	}
	if err := NewName("ok").Validate(); err != nil {
		t.Errorf("valid name rejected: %v", err)
	}
}

func TestNameCDRRoundTrip(t *testing.T) {
	in := Name{{ID: "a", Kind: "k"}, {ID: "b"}, {ID: "", Kind: "only-kind"}}
	e := cdr.NewEncoder(0)
	in.MarshalCDR(e)
	d := cdr.NewDecoder(e.Bytes())
	out, err := DecodeName(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("component %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestDecodeNameTooDeep(t *testing.T) {
	e := cdr.NewEncoder(0)
	e.PutUint32(1000)
	if _, err := DecodeName(cdr.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("expected depth error")
	}
}

// Property: String/ParseName round trip for arbitrary component content.
func TestQuickNameStringRoundTrip(t *testing.T) {
	f := func(ids []string) bool {
		var n Name
		for _, id := range ids {
			if id == "" {
				id = "x"
			}
			n = append(n, Component{ID: id})
		}
		if len(n) == 0 {
			return true
		}
		parsed, err := ParseName(n.String())
		if err != nil {
			return false
		}
		if len(parsed) != len(n) {
			return false
		}
		for i := range n {
			if parsed[i].ID != n[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
