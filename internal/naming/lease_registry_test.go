package naming

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// leaseClock is a manually advanced registry clock.
type leaseClock struct{ t time.Time }

func (c *leaseClock) now() time.Time          { return c.t }
func (c *leaseClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newLeaseClock() *leaseClock { return &leaseClock{t: time.Unix(5000, 0)} }

func testRef(addr, key string) orb.ObjectRef {
	return orb.ObjectRef{Addr: addr, Key: key, TypeID: "IDL:test:1.0"}
}

func TestRegistryLeaseExpiry(t *testing.T) {
	clk := newLeaseClock()
	r := NewRegistry()
	r.SetClock(clk.now)
	name := NewName("svc")
	leased := testRef("h1:1", "a")
	forever := testRef("h2:1", "b")
	if err := r.BindOffer(name, Offer{Ref: leased, Host: "h1", LeaseTTL: time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := r.BindOffer(name, Offer{Ref: forever, Host: "h2"}); err != nil {
		t.Fatal(err)
	}

	live, err := r.LiveOffers(name)
	if err != nil || len(live) != 2 {
		t.Fatalf("LiveOffers = %v, %v; want both offers", live, err)
	}

	clk.advance(1500 * time.Millisecond)
	live, err = r.LiveOffers(name)
	if err != nil || len(live) != 1 || live[0].Ref != forever {
		t.Fatalf("after expiry LiveOffers = %v, %v; want only the leaseless offer", live, err)
	}
	// Offers (the admin view) still shows the expired offer until swept.
	all, err := r.Offers(name)
	if err != nil || len(all) != 2 {
		t.Fatalf("Offers = %v, %v; want both (expired not yet swept)", all, err)
	}

	evicted := r.ExpireOffers()
	if len(evicted) != 1 || evicted[0].Offer.Ref != leased || evicted[0].Name.String() != name.String() {
		t.Fatalf("ExpireOffers = %+v, want the leased offer under %v", evicted, name)
	}
	if all, _ := r.Offers(name); len(all) != 1 {
		t.Fatalf("after sweep Offers = %v, want 1", all)
	}
	// Idempotent: nothing left to evict.
	if again := r.ExpireOffers(); len(again) != 0 {
		t.Fatalf("second ExpireOffers = %+v, want none", again)
	}
}

func TestRegistryRenewLease(t *testing.T) {
	clk := newLeaseClock()
	r := NewRegistry()
	r.SetClock(clk.now)
	name := NewName("svc")
	ref := testRef("h1:1", "a")
	if err := r.BindOffer(name, Offer{Ref: ref, Host: "h1", LeaseTTL: time.Second}); err != nil {
		t.Fatal(err)
	}
	clk.advance(900 * time.Millisecond)
	if err := r.RenewLease(name, ref, time.Second); err != nil {
		t.Fatal(err)
	}
	clk.advance(900 * time.Millisecond)
	if live, err := r.LiveOffers(name); err != nil || len(live) != 1 {
		t.Fatalf("renewed offer not live: %v, %v", live, err)
	}
	// Renewing an unknown ref (or an evicted offer) is NotFound.
	if err := r.RenewLease(name, testRef("h9:1", "zz"), time.Second); !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("renew of unknown ref = %v, want NotFound", err)
	}
	// A group whose offers all expired resolves as NotFound.
	clk.advance(2 * time.Second)
	if _, err := r.LiveOffers(name); !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("all-expired LiveOffers err = %v, want NotFound", err)
	}
}

func TestRegistryLeasesView(t *testing.T) {
	clk := newLeaseClock()
	r := NewRegistry()
	r.SetClock(clk.now)
	name := NewName("svc")
	if err := r.BindOffer(name, Offer{Ref: testRef("h1:1", "a"), Host: "h1", LeaseTTL: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := r.BindOffer(name, Offer{Ref: testRef("h2:1", "b"), Host: "h2"}); err != nil {
		t.Fatal(err)
	}
	clk.advance(4 * time.Second)
	leases, err := r.Leases(name)
	if err != nil || len(leases) != 2 {
		t.Fatalf("Leases = %v, %v", leases, err)
	}
	byHost := map[string]OfferLease{}
	for _, l := range leases {
		byHost[l.Offer.Host] = l
	}
	if got := byHost["h1"].Remaining; got != 6*time.Second {
		t.Fatalf("h1 remaining = %v, want 6s", got)
	}
	if got := byHost["h2"].Remaining; got != 0 {
		t.Fatalf("leaseless h2 remaining = %v, want 0", got)
	}
}

func TestRegistryEpochAdvancesOnMutation(t *testing.T) {
	r := NewRegistry()
	name := NewName("svc")
	e0 := r.Epoch()
	if err := r.BindOffer(name, Offer{Ref: testRef("h1:1", "a"), Host: "h1"}); err != nil {
		t.Fatal(err)
	}
	if r.Epoch() <= e0 {
		t.Fatal("BindOffer did not advance the epoch")
	}
	e1 := r.Epoch()
	// Read-only operations must not advance it.
	if _, err := r.Offers(name); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LiveOffers(name); err != nil {
		t.Fatal(err)
	}
	_ = r.ExpireOffers() // nothing to evict: no bump
	if r.Epoch() != e1 {
		t.Fatalf("epoch moved to %d on read-only operations, want %d", r.Epoch(), e1)
	}
}

func TestSnapshotV2RoundTripWithLeases(t *testing.T) {
	clk := newLeaseClock()
	r := NewRegistry()
	r.SetClock(clk.now)
	name := NewName("svc")
	if err := r.BindOffer(name, Offer{Ref: testRef("h1:1", "a"), Host: "h1", LeaseTTL: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := r.BindOffer(name, Offer{Ref: testRef("h2:1", "b"), Host: "h2"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(NewName("solo"), testRef("h3:1", "c")); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()

	r2 := NewRegistry()
	r2.SetClock(clk.now)
	if err := r2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if r2.Epoch() != r.Epoch() {
		t.Fatalf("restored epoch = %d, want %d", r2.Epoch(), r.Epoch())
	}
	offers, err := r2.Offers(name)
	if err != nil || len(offers) != 2 {
		t.Fatalf("restored Offers = %v, %v", offers, err)
	}
	for _, o := range offers {
		if o.Host == "h1" {
			if o.LeaseTTL != 3*time.Second || o.Expires.IsZero() {
				t.Fatalf("lease metadata lost in round trip: %+v", o)
			}
		} else if o.LeaseTTL != 0 || !o.Expires.IsZero() {
			t.Fatalf("leaseless offer gained a lease: %+v", o)
		}
	}
	// The lease keeps expiring on the restored registry.
	clk.advance(4 * time.Second)
	if evicted := r2.ExpireOffers(); len(evicted) != 1 {
		t.Fatalf("restored lease did not expire: %+v", evicted)
	}
}

// encodeV1Snapshot builds a version-1 snapshot by hand: one group with
// two offers plus one object binding, in the exact v1 wire layout.
func encodeV1Snapshot(t *testing.T) []byte {
	t.Helper()
	return cdr.Encapsulate(func(e *cdr.Encoder) {
		e.PutUint32(1) // version: no epoch header follows
		e.PutUint32(2) // root entries
		e.PutString("svc")
		e.PutString("")
		e.PutUint32(uint32(BindGroup))
		e.PutUint32(2)
		testRef("h1:1", "a").MarshalCDR(e)
		e.PutString("h1")
		testRef("h2:1", "b").MarshalCDR(e)
		e.PutString("h2")
		e.PutString("solo")
		e.PutString("")
		e.PutUint32(uint32(BindObject))
		testRef("h3:1", "c").MarshalCDR(e)
	})
}

func TestSnapshotV1StillReadable(t *testing.T) {
	r := NewRegistry()
	if err := r.RestoreSnapshot(encodeV1Snapshot(t)); err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if r.Epoch() != 0 {
		t.Fatalf("v1 restore epoch = %d, want 0", r.Epoch())
	}
	offers, err := r.Offers(NewName("svc"))
	if err != nil || len(offers) != 2 {
		t.Fatalf("v1 offers = %v, %v", offers, err)
	}
	for _, o := range offers {
		if o.LeaseTTL != 0 || !o.Expires.IsZero() {
			t.Fatalf("v1 offer gained lease metadata: %+v", o)
		}
	}
	if _, err := r.ResolveObject(NewName("solo")); err != nil {
		t.Fatalf("v1 object binding lost: %v", err)
	}
	// v1 offers never expire.
	if evicted := r.ExpireOffers(); len(evicted) != 0 {
		t.Fatalf("v1 offers evicted: %+v", evicted)
	}
}

func TestSnapshotCorruptionTypedError(t *testing.T) {
	r := NewRegistry()
	if err := r.BindOffer(NewName("svc"), Offer{Ref: testRef("h1:1", "a"), Host: "h1", LeaseTTL: time.Second}); err != nil {
		t.Fatal(err)
	}
	good := r.Snapshot()

	// Every truncation must fail cleanly with the typed error, never panic.
	for cut := 0; cut < len(good); cut++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("restore of %d-byte prefix panicked: %v", cut, p)
				}
			}()
			err := NewRegistry().RestoreSnapshot(good[:cut])
			if err == nil {
				t.Fatalf("restore of %d-byte prefix succeeded", cut)
			}
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("restore of %d-byte prefix: err = %v, want ErrCorruptSnapshot", cut, err)
			}
		}()
	}

	// Flipped count field: an absurd entry count is corruption, not OOM.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	if err := NewRegistry().RestoreSnapshot(bad); err != nil && !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("bit-flipped snapshot: err = %v, want ErrCorruptSnapshot or success", err)
	}

	// An unsupported future version is a distinct, non-corruption error.
	future := cdr.Encapsulate(func(e *cdr.Encoder) { e.PutUint32(99) })
	if err := NewRegistry().RestoreSnapshot(future); err == nil || errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("future version err = %v, want unsupported-version error", err)
	}
}

func TestAdoptSnapshotLastWriterWins(t *testing.T) {
	a := NewRegistry()
	name := NewName("svc")
	if err := a.BindOffer(name, Offer{Ref: testRef("h1:1", "a"), Host: "h1"}); err != nil {
		t.Fatal(err)
	}
	if err := a.BindOffer(name, Offer{Ref: testRef("h2:1", "b"), Host: "h2"}); err != nil {
		t.Fatal(err)
	}

	b := NewRegistry()
	adopted, err := b.AdoptSnapshot(a.Snapshot())
	if err != nil || !adopted {
		t.Fatalf("fresh replica did not adopt: %v, %v", adopted, err)
	}
	if b.Epoch() != a.Epoch() {
		t.Fatalf("adopted epoch = %d, want %d", b.Epoch(), a.Epoch())
	}
	if offers, err := b.Offers(name); err != nil || len(offers) != 2 {
		t.Fatalf("adopted offers = %v, %v", offers, err)
	}
	if b.SnapshotsAdopted() != 1 {
		t.Fatalf("SnapshotsAdopted = %d, want 1", b.SnapshotsAdopted())
	}

	// Same epoch again: no-op.
	adopted, err = b.AdoptSnapshot(a.Snapshot())
	if err != nil || adopted {
		t.Fatalf("equal-epoch snapshot adopted = %v, want false", adopted)
	}

	// b moves ahead locally; a's now-older snapshot must not clobber it.
	stale := a.Snapshot()
	if err := b.UnbindOffer(name, testRef("h1:1", "a")); err != nil {
		t.Fatal(err)
	}
	if err := b.BindOffer(name, Offer{Ref: testRef("h3:1", "c"), Host: "h3"}); err != nil {
		t.Fatal(err)
	}
	adopted, err = b.AdoptSnapshot(stale)
	if err != nil || adopted {
		t.Fatalf("stale snapshot adopted = %v, want false", adopted)
	}
	offers, _ := b.Offers(name)
	hosts := map[string]bool{}
	for _, o := range offers {
		hosts[o.Host] = true
	}
	if hosts["h1"] || !hosts["h3"] {
		t.Fatalf("stale adopt clobbered local state: %v", offers)
	}
}
