// Package naming implements a CORBA CosNaming-style naming service: a
// hierarchical tree of naming contexts binding compound names to object
// references, exposed as an ordinary ORB service (servant + client stub).
//
// Beyond plain CosNaming the service supports *group bindings*: several
// object references registered under one name, with a pluggable Selector
// deciding which one a resolve returns. The plain selector (registration
// order round-robin) is the paper's unmodified-naming-service baseline;
// the Winner-driven selector in internal/core is the paper's contribution.
package naming

import (
	"fmt"
	"strings"

	"repro/internal/cdr"
)

// Component is one step of a compound name (CosNaming NameComponent: an id
// plus an optional kind qualifier).
type Component struct {
	ID   string
	Kind string
}

func (c Component) String() string {
	if c.Kind == "" {
		return escape(c.ID)
	}
	return escape(c.ID) + "." + escape(c.Kind)
}

// Name is a compound name: a path of components from a root context.
type Name []Component

// NewName builds a Name from plain ids (empty kinds).
func NewName(ids ...string) Name {
	n := make(Name, len(ids))
	for i, id := range ids {
		n[i] = Component{ID: id}
	}
	return n
}

// String renders the name in the CosNaming string syntax: components
// separated by '/', id and kind separated by '.', both escapable with '\'.
func (n Name) String() string {
	parts := make([]string, len(n))
	for i, c := range n {
		parts[i] = c.String()
	}
	return strings.Join(parts, "/")
}

// escape backslash-escapes the structural characters '/', '.' and '\'.
func escape(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '/' || r == '.' || r == '\\' {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// InvalidNameError reports a malformed name or name string.
type InvalidNameError struct{ Reason string }

func (e *InvalidNameError) Error() string { return "naming: invalid name: " + e.Reason }

// ParseName parses the CosNaming string syntax produced by Name.String.
func ParseName(s string) (Name, error) {
	if s == "" {
		return nil, &InvalidNameError{Reason: "empty name"}
	}
	var name Name
	var cur strings.Builder
	var id string
	inKind := false
	flush := func() error {
		if inKind {
			if id == "" && cur.Len() == 0 {
				return &InvalidNameError{Reason: "empty component"}
			}
			name = append(name, Component{ID: id, Kind: cur.String()})
		} else {
			if cur.Len() == 0 {
				return &InvalidNameError{Reason: "empty component"}
			}
			name = append(name, Component{ID: cur.String()})
		}
		cur.Reset()
		id = ""
		inKind = false
		return nil
	}
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch ch {
		case '\\':
			if i+1 >= len(s) {
				return nil, &InvalidNameError{Reason: "trailing escape"}
			}
			i++
			cur.WriteByte(s[i])
		case '/':
			if err := flush(); err != nil {
				return nil, err
			}
		case '.':
			if inKind {
				return nil, &InvalidNameError{Reason: "multiple kind separators"}
			}
			id = cur.String()
			cur.Reset()
			inKind = true
		default:
			cur.WriteByte(ch)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return name, nil
}

// Validate rejects empty names and empty component ids.
func (n Name) Validate() error {
	if len(n) == 0 {
		return &InvalidNameError{Reason: "empty name"}
	}
	for _, c := range n {
		if c.ID == "" {
			return &InvalidNameError{Reason: "empty component id"}
		}
	}
	return nil
}

// MarshalCDR encodes the name as a sequence of (id, kind) pairs.
func (n Name) MarshalCDR(e *cdr.Encoder) {
	e.PutUint32(uint32(len(n)))
	for _, c := range n {
		e.PutString(c.ID)
		e.PutString(c.Kind)
	}
}

// DecodeName reads a Name from d.
func DecodeName(d *cdr.Decoder) (Name, error) {
	cnt := d.GetUint32()
	if cnt > 255 {
		return nil, &InvalidNameError{Reason: fmt.Sprintf("name too deep: %d", cnt)}
	}
	n := make(Name, 0, cnt)
	for i := uint32(0); i < cnt; i++ {
		c := Component{ID: d.GetString(), Kind: d.GetString()}
		if err := d.Err(); err != nil {
			return nil, err
		}
		n = append(n, c)
	}
	return n, d.Err()
}
