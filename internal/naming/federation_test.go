package naming

import (
	"context"
	"strings"
	"testing"

	"repro/internal/orb"
)

// twoServers boots two independent naming servers and returns clients for
// both plus the second server's root reference.
func twoServers(t *testing.T) (a, b *Client, bRoot orb.ObjectRef) {
	t.Helper()
	o := orb.New(orb.Options{Name: "fed-test"})
	t.Cleanup(o.Shutdown)

	adA, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	refA := adA.Activate(DefaultKey, NewServant(NewRegistry(), nil))

	adB, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	refB := adB.Activate(DefaultKey, NewServant(NewRegistry(), nil))

	return NewClient(o, refA), NewClient(o, refB), refB
}

func TestFederatedBindAndResolve(t *testing.T) {
	a, b, bRoot := twoServers(t)
	if err := a.BindRemoteContext(context.Background(), NewName("campus-b"), bRoot); err != nil {
		t.Fatal(err)
	}
	// Bind through the mount: the entry must land in server B.
	target := ref(7)
	if err := a.Bind(context.Background(), NewName("campus-b", "printer"), target); err != nil {
		t.Fatal(err)
	}
	got, err := b.Resolve(context.Background(), NewName("printer"))
	if err != nil || got != target {
		t.Fatalf("B resolve = %v, %v", got, err)
	}
	// Resolve through the mount from A's side.
	got, err = a.Resolve(context.Background(), NewName("campus-b", "printer"))
	if err != nil || got != target {
		t.Fatalf("A resolve = %v, %v", got, err)
	}
}

func TestFederatedResolveMountItself(t *testing.T) {
	a, _, bRoot := twoServers(t)
	if err := a.BindRemoteContext(context.Background(), NewName("campus-b"), bRoot); err != nil {
		t.Fatal(err)
	}
	got, err := a.Resolve(context.Background(), NewName("campus-b"))
	if err != nil || got != bRoot {
		t.Fatalf("resolve mount = %v, %v", got, err)
	}
}

func TestFederatedList(t *testing.T) {
	a, b, bRoot := twoServers(t)
	if err := a.BindRemoteContext(context.Background(), NewName("campus-b"), bRoot); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(context.Background(), NewName("svc1"), ref(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind(context.Background(), NewName("svc2"), ref(2)); err != nil {
		t.Fatal(err)
	}
	bindings, err := a.List(context.Background(), NewName("campus-b"))
	if err != nil || len(bindings) != 2 {
		t.Fatalf("list = %+v, %v", bindings, err)
	}
	// The mount shows up in A's root listing as a remote binding.
	rootBindings, err := a.List(context.Background(), nil)
	if err != nil || len(rootBindings) != 1 || rootBindings[0].Type != BindRemote {
		t.Fatalf("root list = %+v, %v", rootBindings, err)
	}
}

func TestFederatedDeepPath(t *testing.T) {
	a, b, bRoot := twoServers(t)
	if err := a.BindRemoteContext(context.Background(), NewName("campus-b"), bRoot); err != nil {
		t.Fatal(err)
	}
	if err := a.BindNewContext(context.Background(), NewName("local")); err != nil {
		t.Fatal(err)
	}
	// Deep name crossing the mount mid-path, after a local context hop is
	// impossible (mount at root of B); create B-side structure instead.
	if err := b.BindNewContext(context.Background(), NewName("lab")); err != nil {
		t.Fatal(err)
	}
	target := ref(9)
	if err := a.Bind(context.Background(), NewName("campus-b", "lab", "scope"), target); err != nil {
		t.Fatal(err)
	}
	got, err := a.Resolve(context.Background(), NewName("campus-b", "lab", "scope"))
	if err != nil || got != target {
		t.Fatalf("deep resolve = %v, %v", got, err)
	}
}

func TestFederatedOffers(t *testing.T) {
	a, _, bRoot := twoServers(t)
	if err := a.BindRemoteContext(context.Background(), NewName("campus-b"), bRoot); err != nil {
		t.Fatal(err)
	}
	if err := a.BindOffer(context.Background(), NewName("campus-b", "workers"), ref(1), "h1"); err != nil {
		t.Fatal(err)
	}
	if err := a.BindOffer(context.Background(), NewName("campus-b", "workers"), ref(2), "h2"); err != nil {
		t.Fatal(err)
	}
	offers, err := a.ListOffers(context.Background(), NewName("campus-b", "workers"))
	if err != nil || len(offers) != 2 {
		t.Fatalf("offers = %+v, %v", offers, err)
	}
	if err := a.UnbindOffer(context.Background(), NewName("campus-b", "workers"), ref(1)); err != nil {
		t.Fatal(err)
	}
	offers, err = a.ListOffers(context.Background(), NewName("campus-b", "workers"))
	if err != nil || len(offers) != 1 || offers[0].Host != "h2" {
		t.Fatalf("offers = %+v, %v", offers, err)
	}
}

func TestFederatedThreeServerChain(t *testing.T) {
	o := orb.New(orb.Options{Name: "chain"})
	t.Cleanup(o.Shutdown)
	var clients []*Client
	var roots []orb.ObjectRef
	for i := 0; i < 3; i++ {
		ad, err := o.NewAdapter("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		root := ad.Activate(DefaultKey, NewServant(NewRegistry(), nil))
		clients = append(clients, NewClient(o, root))
		roots = append(roots, root)
	}
	// 0 mounts 1 under "next", 1 mounts 2 under "next".
	if err := clients[0].BindRemoteContext(context.Background(), NewName("next"), roots[1]); err != nil {
		t.Fatal(err)
	}
	if err := clients[1].BindRemoteContext(context.Background(), NewName("next"), roots[2]); err != nil {
		t.Fatal(err)
	}
	target := ref(5)
	if err := clients[2].Bind(context.Background(), NewName("end"), target); err != nil {
		t.Fatal(err)
	}
	got, err := clients[0].Resolve(context.Background(), NewName("next", "next", "end"))
	if err != nil || got != target {
		t.Fatalf("chained resolve = %v, %v", got, err)
	}
}

func TestFederationHopBound(t *testing.T) {
	a, _, _ := twoServers(t)
	// A mounts itself: resolution of a long self/self/... name must stop
	// at the hop bound instead of looping.
	if err := a.BindRemoteContext(context.Background(), NewName("self"), a.Ref()); err != nil {
		t.Fatal(err)
	}
	name := Name{}
	for i := 0; i < maxFederationHops+3; i++ {
		name = append(name, Component{ID: "self"})
	}
	name = append(name, Component{ID: "x"})
	_, err := a.Resolve(context.Background(), name)
	if err == nil {
		t.Fatal("unbounded federation resolve succeeded")
	}
	if !orb.IsUserException(err, ExFederated) && !strings.Contains(err.Error(), "hops") {
		t.Fatalf("err = %v", err)
	}
}

func TestFederatedSnapshotPersistsMount(t *testing.T) {
	a, _, bRoot := twoServers(t)
	if err := a.BindRemoteContext(context.Background(), NewName("campus-b"), bRoot); err != nil {
		t.Fatal(err)
	}
	// Snapshot A's registry by reaching through the servant is not
	// possible remotely; build an equivalent local registry instead.
	r := NewRegistry()
	if err := r.BindRemoteContext(NewName("campus-b"), bRoot); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if err := r2.RestoreSnapshot(r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got, err := r2.ResolveObject(NewName("campus-b"))
	if err != nil || got != bRoot {
		t.Fatalf("restored mount = %v, %v", got, err)
	}
}

func TestBindRemoteContextConflicts(t *testing.T) {
	r := NewRegistry()
	if err := r.Bind(NewName("x"), ref(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.BindRemoteContext(NewName("x"), ref(2)); !orb.IsUserException(err, ExAlreadyBound) {
		t.Fatalf("err = %v", err)
	}
	if err := r.BindRemoteContext(Name{}, ref(2)); !orb.IsUserException(err, ExInvalidName) {
		t.Fatalf("err = %v", err)
	}
}
