package naming

import (
	"context"
	"errors"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdr"
	"repro/internal/obs"
	"repro/internal/orb"
)

// Push-based invalidation: instead of every client re-resolving through
// the naming service on failover (a resolve storm at client scale), the
// nameserver keeps a watch table — name → interested client callbacks —
// and pushes a oneway membership update whenever a name's offers change
// (bound, re-bound, unbound, lease-evicted, replaced by a peer
// snapshot). Pushes carry the registry epoch read atomically with the
// membership (Registry.WatchView), so a client applies an update only if
// it is strictly newer than what it holds; reordered or duplicated
// oneway deliveries are harmless. A reconnecting or resubscribing client
// catches up with one watch call: the reply IS the delta (full current
// membership + epoch for that name).

// ListenerTypeID is the repository id of the client-side callback
// interface that receives membership pushes.
const ListenerTypeID = "IDL:repro/CosNaming/NamingListener:1.0"

// Watch-channel operation names. opWatch/opUnwatch/opListWatches extend
// the naming service contract; opInvalidate is the oneway push the
// nameserver sends to client listener servants.
const (
	opWatch       = "watch"
	opUnwatch     = "unwatch"
	opListWatches = "list_watches"
	opInvalidate  = "ns_invalidate"
)

// putLeases encodes a membership view: count, then per offer its
// reference, host, lease TTL and remaining lease time. The same layout
// serves list_leases replies, watch replies and invalidation pushes.
func putLeases(e *cdr.Encoder, leases []OfferLease) {
	e.PutUint32(uint32(len(leases)))
	for _, l := range leases {
		l.Offer.Ref.MarshalCDR(e)
		e.PutString(l.Offer.Host)
		e.PutInt64(int64(l.Offer.LeaseTTL))
		e.PutInt64(int64(l.Remaining))
	}
}

// getLeases decodes what putLeases wrote.
func getLeases(d *cdr.Decoder) ([]OfferLease, error) {
	n := d.GetUint32()
	if n > 1<<20 {
		return nil, &orb.SystemException{Kind: orb.ExMarshal, Detail: "lease list too long"}
	}
	out := make([]OfferLease, 0, n)
	for i := uint32(0); i < n; i++ {
		var l OfferLease
		if err := l.Offer.Ref.UnmarshalCDR(d); err != nil {
			return nil, err
		}
		l.Offer.Host = d.GetString()
		l.Offer.LeaseTTL = time.Duration(d.GetInt64())
		l.Remaining = time.Duration(d.GetInt64())
		out = append(out, l)
	}
	return out, d.Err()
}

// HubOptions tune a Hub.
type HubOptions struct {
	// PushTimeout bounds one oneway push to one watcher (default 2s).
	PushTimeout time.Duration
	// MaxPushFailures drops a watcher after this many consecutive
	// failed pushes (default 3): a client that went away without
	// unwatching stops costing dial attempts.
	MaxPushFailures int
	// WatchTTL drops watchers that have neither re-watched nor accepted
	// a push for this long (default 5m). Client refresh loops re-watch
	// well inside it.
	WatchTTL time.Duration
	// Logger receives drop/push diagnostics (default slog.Default()).
	Logger *slog.Logger
	// Rank, when set, reorders each pushed membership (e.g. the
	// nameserver moves the Winner selector's current pick to the front
	// so winner-weighted clients bias toward the least-loaded host).
	Rank func(name Name, leases []OfferLease) []OfferLease
}

// watcher is one registered callback for one name.
type watcher struct {
	failures int
	lastSeen time.Time
}

// WatchInfo is one row of the operator view behind `nsadmin watches`.
type WatchInfo struct {
	Name     Name
	Watchers int
}

// Hub is the nameserver's push engine. It observes registry mutations
// (via Registry.SetWatchNotify), coalesces dirty names, and has a single
// worker push each dirty name's current membership + epoch to every
// registered watcher as a oneway ns_invalidate. Lock order is
// registry.mu → hub.mu (the notify hook runs under the registry lock);
// the worker therefore never holds hub.mu while reading the registry.
type Hub struct {
	orb  *orb.ORB
	reg  *Registry
	opts HubOptions

	mu      sync.Mutex
	watches map[string]map[orb.ObjectRef]*watcher
	names   map[string]Name // nameKey → parsed name (for wildcard flushes)
	dirty   map[string]Name
	allDirt bool
	kick    chan struct{}

	pushed     atomic.Uint64
	pushErrors atomic.Uint64
	dropped    atomic.Uint64

	startMu  sync.Mutex
	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	now      func() time.Time
}

// NewHub builds the push engine over reg, serving pushes through o, and
// installs itself as the registry's mutation observer.
func NewHub(o *orb.ORB, reg *Registry, opts HubOptions) *Hub {
	if opts.PushTimeout <= 0 {
		opts.PushTimeout = 2 * time.Second
	}
	if opts.MaxPushFailures <= 0 {
		opts.MaxPushFailures = 3
	}
	if opts.WatchTTL <= 0 {
		opts.WatchTTL = 5 * time.Minute
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	h := &Hub{
		orb:     o,
		reg:     reg,
		opts:    opts,
		watches: make(map[string]map[orb.ObjectRef]*watcher),
		names:   make(map[string]Name),
		dirty:   make(map[string]Name),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		now:     time.Now,
	}
	reg.SetWatchNotify(h.Invalidate)
	return h
}

// SetClock overrides the watcher-staleness clock (tests).
func (h *Hub) SetClock(now func() time.Time) {
	h.mu.Lock()
	h.now = now
	h.mu.Unlock()
}

// Invalidate marks n dirty (nil: every watched name) and kicks the
// worker. It is the registry's notify hook and runs under the registry
// lock, so it only records and returns.
func (h *Hub) Invalidate(n Name) {
	h.mu.Lock()
	if n == nil {
		h.allDirt = true
	} else {
		h.dirty[n.String()] = n
	}
	h.mu.Unlock()
	select {
	case h.kick <- struct{}{}:
	default:
	}
}

// Watch registers callback for pushes about name and returns the current
// membership + epoch — the delta-sync reply for a (re)subscribing
// client. sinceEpoch is the epoch the client already holds; it is
// advisory (the reply always carries the full current view for the
// name, and the client's epoch guard discards it if not newer).
func (h *Hub) Watch(name Name, callback orb.ObjectRef, sinceEpoch uint64) ([]OfferLease, uint64) {
	k := name.String()
	h.mu.Lock()
	ws := h.watches[k]
	if ws == nil {
		ws = make(map[orb.ObjectRef]*watcher)
		h.watches[k] = ws
		h.names[k] = name
	}
	w := ws[callback]
	if w == nil {
		w = &watcher{}
		ws[callback] = w
	}
	w.failures = 0
	w.lastSeen = h.now()
	h.mu.Unlock()
	leases, epoch := h.reg.WatchView(name)
	if h.opts.Rank != nil {
		leases = h.opts.Rank(name, leases)
	}
	return leases, epoch
}

// Unwatch removes callback's registration for name.
func (h *Hub) Unwatch(name Name, callback orb.ObjectRef) {
	k := name.String()
	h.mu.Lock()
	if ws := h.watches[k]; ws != nil {
		delete(ws, callback)
		if len(ws) == 0 {
			delete(h.watches, k)
			delete(h.names, k)
		}
	}
	h.mu.Unlock()
}

// Watches returns the current watch table, sorted by name.
func (h *Hub) Watches() []WatchInfo {
	h.mu.Lock()
	out := make([]WatchInfo, 0, len(h.watches))
	for k, ws := range h.watches {
		out = append(out, WatchInfo{Name: h.names[k], Watchers: len(ws)})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name.String() < out[j].Name.String() })
	return out
}

// Watchers returns the total number of registered (name, callback)
// pairs.
func (h *Hub) Watchers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, ws := range h.watches {
		n += len(ws)
	}
	return n
}

// Pushed returns how many invalidation pushes have been delivered.
func (h *Hub) Pushed() uint64 { return h.pushed.Load() }

// PushErrors returns how many pushes failed.
func (h *Hub) PushErrors() uint64 { return h.pushErrors.Load() }

// Dropped returns how many watchers were evicted (push failures or
// staleness).
func (h *Hub) Dropped() uint64 { return h.dropped.Load() }

// ExportMetrics registers the hub's counters with an obs registry.
func (h *Hub) ExportMetrics(reg *obs.Registry) {
	reg.NewCounterFunc("naming_invalidations_pushed_total",
		"Oneway membership invalidations pushed to watching clients.", h.Pushed)
	reg.NewCounterFunc("naming_invalidation_push_errors_total",
		"Invalidation pushes that failed to reach the watcher.", h.PushErrors)
	reg.NewCounterFunc("naming_watchers_dropped_total",
		"Watchers evicted after repeated push failures or staleness.", h.Dropped)
	reg.NewGaugeFunc("naming_watchers",
		"Registered (name, callback) watch pairs.",
		func() float64 { return float64(h.Watchers()) })
}

// Flush synchronously pushes every dirty name once. The worker calls it
// on each kick; tests call it directly for deterministic delivery.
func (h *Hub) Flush() {
	h.mu.Lock()
	dirty := h.dirty
	h.dirty = make(map[string]Name)
	if h.allDirt {
		h.allDirt = false
		for k, n := range h.names {
			dirty[k] = n
		}
	}
	type job struct {
		name Name
		refs []orb.ObjectRef
	}
	jobs := make([]job, 0, len(dirty))
	for k, n := range dirty {
		ws := h.watches[k]
		if len(ws) == 0 {
			continue
		}
		refs := make([]orb.ObjectRef, 0, len(ws))
		for ref := range ws {
			refs = append(refs, ref)
		}
		jobs = append(jobs, job{name: n, refs: refs})
	}
	h.mu.Unlock()

	for _, j := range jobs {
		leases, epoch := h.reg.WatchView(j.name)
		if h.opts.Rank != nil {
			leases = h.opts.Rank(j.name, leases)
		}
		for _, ref := range j.refs {
			h.pushTo(j.name, ref, leases, epoch)
		}
	}
}

// pushTo delivers one membership update to one watcher, tracking
// consecutive failures and dropping the watcher past the limit.
func (h *Hub) pushTo(name Name, callback orb.ObjectRef, leases []OfferLease, epoch uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), h.opts.PushTimeout)
	err := h.orb.Notify(ctx, callback, opInvalidate, func(e *cdr.Encoder) {
		name.MarshalCDR(e)
		e.PutUint64(epoch)
		putLeases(e, leases)
	})
	cancel()
	k := name.String()
	h.mu.Lock()
	defer h.mu.Unlock()
	ws := h.watches[k]
	w := ws[callback]
	if w == nil {
		return // unwatched while we were pushing
	}
	if err == nil {
		h.pushed.Add(1)
		w.failures = 0
		w.lastSeen = h.now()
		return
	}
	h.pushErrors.Add(1)
	w.failures++
	if w.failures >= h.opts.MaxPushFailures {
		delete(ws, callback)
		if len(ws) == 0 {
			delete(h.watches, k)
			delete(h.names, k)
		}
		h.dropped.Add(1)
		h.opts.Logger.Info("naming: watcher dropped after repeated push failures",
			"name", k, "callback", callback.Addr, "failures", w.failures)
	}
}

// sweepWatchers drops watchers that have been silent past WatchTTL.
func (h *Hub) sweepWatchers() {
	cutoff := h.now().Add(-h.opts.WatchTTL)
	h.mu.Lock()
	defer h.mu.Unlock()
	for k, ws := range h.watches {
		for ref, w := range ws {
			if w.lastSeen.Before(cutoff) {
				delete(ws, ref)
				h.dropped.Add(1)
				h.opts.Logger.Info("naming: stale watcher dropped",
					"name", k, "callback", ref.Addr)
			}
		}
		if len(ws) == 0 {
			delete(h.watches, k)
			delete(h.names, k)
		}
	}
}

// Start launches the push worker. Start is idempotent.
func (h *Hub) Start() {
	h.startMu.Lock()
	if h.started {
		h.startMu.Unlock()
		return
	}
	h.started = true
	h.startMu.Unlock()
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.opts.WatchTTL / 4)
		defer t.Stop()
		for {
			select {
			case <-h.kick:
				h.Flush()
			case <-t.C:
				h.sweepWatchers()
			case <-h.stop:
				return
			}
		}
	}()
}

// HealthProbe is the hub's component probe for obs.Health: unhealthy
// before Start and after Stop, when watchers silently go stale because
// no one pushes invalidations.
func (h *Hub) HealthProbe() error {
	h.startMu.Lock()
	started := h.started
	h.startMu.Unlock()
	if !started {
		return errors.New("push hub not started")
	}
	select {
	case <-h.stop:
		return errors.New("push hub stopped")
	default:
		return nil
	}
}

// Stop halts the worker and waits for it to exit.
func (h *Hub) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.startMu.Lock()
	started := h.started
	h.startMu.Unlock()
	if started {
		<-h.done
	}
}

// RankBySelector builds a Hub.Rank that moves the selector's current
// pick to the front of each pushed membership, so winner-weighted
// clients bias toward the host the load-distribution service would have
// chosen.
func RankBySelector(sel Selector) func(Name, []OfferLease) []OfferLease {
	return func(name Name, leases []OfferLease) []OfferLease {
		if sel == nil || len(leases) < 2 {
			return leases
		}
		offers := make([]Offer, len(leases))
		for i, l := range leases {
			offers[i] = l.Offer
		}
		chosen, err := sel.Select(name, offers)
		if err != nil {
			return leases
		}
		for i, l := range leases {
			if l.Offer.Ref == chosen.Ref && i > 0 {
				out := make([]OfferLease, 0, len(leases))
				out = append(out, l)
				out = append(out, leases[:i]...)
				out = append(out, leases[i+1:]...)
				return out
			}
		}
		return leases
	}
}
