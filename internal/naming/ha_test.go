package naming

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/orb"
)

// testNS is one in-process naming replica with its own ORB, killable
// independently of the client.
type testNS struct {
	o   *orb.ORB
	reg *Registry
	ref orb.ObjectRef
}

func startNS(t *testing.T, sel Selector) *testNS {
	t.Helper()
	o := orb.New(orb.Options{Name: "ns-replica"})
	t.Cleanup(o.Shutdown)
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	ref := a.Activate(DefaultKey, NewServant(reg, sel))
	return &testNS{o: o, reg: reg, ref: ref}
}

func clientORB(t *testing.T) *orb.ORB {
	t.Helper()
	o := orb.New(orb.Options{Name: "ns-client", CallTimeout: 2 * time.Second})
	t.Cleanup(o.Shutdown)
	return o
}

func TestLeaseRenewerKeepsOfferAlive(t *testing.T) {
	ns := startNS(t, nil)
	o := clientORB(t)
	c := NewClient(o, ns.ref)
	ctx := context.Background()
	name := NewName("svc")
	ref := testRef("h1:1", "a")

	const ttl = 300 * time.Millisecond
	if err := c.BindOfferLease(ctx, name, ref, "h1", ttl); err != nil {
		t.Fatal(err)
	}
	sw := NewSweeper(ns.reg, SweeperOptions{Period: 25 * time.Millisecond})
	sw.Start()
	defer sw.Stop()

	r := StartLeaseRenewer(c, name, ref, "h1", ttl)
	time.Sleep(4 * ttl)
	if offers, err := ns.reg.Offers(name); err != nil || len(offers) != 1 {
		r.Stop()
		t.Fatalf("offer lapsed despite renewer: %v, %v", offers, err)
	}
	if r.Renewals() == 0 {
		r.Stop()
		t.Fatal("renewer made no renewals")
	}
	r.Stop()

	// Without renewals the sweeper reaps the offer within ~TTL.
	deadline := time.Now().Add(10 * ttl)
	for {
		if _, err := ns.reg.Offers(name); orb.IsUserException(err, ExNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("offer never evicted after renewer stopped")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sw.Evicted() == 0 {
		t.Fatal("sweeper eviction counter did not move")
	}
}

func TestLeaseRenewerRebindsAfterEviction(t *testing.T) {
	ns := startNS(t, nil)
	o := clientORB(t)
	c := NewClient(o, ns.ref)
	ctx := context.Background()
	name := NewName("svc")
	ref := testRef("h1:1", "a")

	const ttl = 300 * time.Millisecond
	if err := c.BindOfferLease(ctx, name, ref, "h1", ttl); err != nil {
		t.Fatal(err)
	}
	r := StartLeaseRenewer(c, name, ref, "h1", ttl)
	defer r.Stop()

	// Simulate an eviction (sweeper or operator): the renewer must notice
	// the NotFound and re-register.
	if err := ns.reg.UnbindOffer(name, ref); err != nil {
		t.Fatal(err)
	}
	// Poll the counter, not just the registry: the server-side bind is
	// visible before the renewer's RPC reply lands and bumps Rebinds.
	deadline := time.Now().Add(10 * ttl)
	for {
		offers, err := ns.reg.Offers(name)
		if err == nil && len(offers) == 1 && r.Rebinds() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("renewer never re-registered the evicted offer (offers %v, rebinds %d)",
				offers, r.Rebinds())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestReplicatorConvergesAndRespectsEpochs(t *testing.T) {
	a := startNS(t, nil)
	b := startNS(t, nil)
	o := clientORB(t)
	ctx := context.Background()
	name := NewName("svc")

	// Peer spec via @file, the lazy ref-file convention.
	dir := t.TempDir()
	refFile := filepath.Join(dir, "b.ref")
	repl := NewReplicator(o, a.reg, []string{"@" + refFile}, ReplicatorOptions{Period: 50 * time.Millisecond})

	if err := a.reg.BindOffer(name, Offer{Ref: testRef("h1:1", "x"), Host: "h1"}); err != nil {
		t.Fatal(err)
	}
	// First push fails: the ref file does not exist yet.
	repl.Step(ctx)
	if repl.Pushes() != 0 || repl.PushErrors() == 0 {
		t.Fatalf("push before ref file exists: pushes=%d errors=%d", repl.Pushes(), repl.PushErrors())
	}
	if err := os.WriteFile(refFile, []byte(b.ref.ToString()+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	repl.Step(ctx)
	if repl.Pushes() != 1 {
		t.Fatalf("pushes = %d, want 1", repl.Pushes())
	}
	if offers, err := b.reg.Offers(name); err != nil || len(offers) != 1 {
		t.Fatalf("replica did not adopt: %v, %v", offers, err)
	}
	if b.reg.Epoch() != a.reg.Epoch() {
		t.Fatalf("replica epoch = %d, want %d", b.reg.Epoch(), a.reg.Epoch())
	}
	if b.reg.SnapshotsAdopted() != 1 {
		t.Fatalf("SnapshotsAdopted = %d, want 1", b.reg.SnapshotsAdopted())
	}

	// Unchanged epoch: the next step pushes nothing.
	repl.Step(ctx)
	if repl.Pushes() != 1 {
		t.Fatalf("redundant push happened: pushes = %d", repl.Pushes())
	}

	// The replica races ahead; a stale push from a must not clobber it.
	for i := 0; i < 3; i++ {
		if err := b.reg.BindOffer(NewName("other"), Offer{Ref: testRef("h9:1", string(rune('a'+i))), Host: "h9"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.reg.BindOffer(name, Offer{Ref: testRef("h2:1", "y"), Host: "h2"}); err != nil {
		t.Fatal(err)
	}
	repl.Step(ctx)
	if _, err := b.reg.Offers(NewName("other")); err != nil {
		t.Fatalf("stale push clobbered the replica's newer state: %v", err)
	}
}

func TestHAClientFailoverAndDegradedMode(t *testing.T) {
	a := startNS(t, nil)
	b := startNS(t, nil)
	o := clientORB(t)
	ctx := context.Background()
	name := NewName("svc")
	target := testRef("h1:1", "worker")

	// Both replicas know the binding (replication outcome, hand-rolled).
	for _, ns := range []*testNS{a, b} {
		if err := ns.reg.BindOffer(name, Offer{Ref: target, Host: "h1"}); err != nil {
			t.Fatal(err)
		}
	}

	ha, err := NewHAClient(o, []orb.ObjectRef{a.ref, b.ref}, HAOptions{
		PerTryTimeout: time.Second,
		Breaker:       orb.BreakerOptions{Cooldown: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	got, err := ha.Resolve(ctx, name)
	if err != nil || got != target {
		t.Fatalf("resolve via primary = %v, %v", got, err)
	}
	if s := ha.Stats(); s.Failovers != 0 {
		t.Fatalf("failovers before any failure = %d", s.Failovers)
	}

	// Kill the primary: resolve must transparently fail over to b.
	a.o.Shutdown()
	got, err = ha.Resolve(ctx, name)
	if err != nil || got != target {
		t.Fatalf("resolve after primary death = %v, %v", got, err)
	}
	s := ha.Stats()
	if s.Failovers == 0 {
		t.Fatal("failover not counted")
	}
	if ha.Degraded() {
		t.Fatal("degraded mode with a live replica")
	}
	// The survivor is now primary: no further failovers on the next call.
	if _, err := ha.Resolve(ctx, name); err != nil {
		t.Fatal(err)
	}
	if s2 := ha.Stats(); s2.Failovers != s.Failovers {
		t.Fatalf("sticky primary did not move: failovers %d -> %d", s.Failovers, s2.Failovers)
	}

	// Kill the survivor too: resolve serves the cached reference in
	// explicit degraded mode — zero client-visible errors.
	b.o.Shutdown()
	got, err = ha.Resolve(ctx, name)
	if err != nil || got != target {
		t.Fatalf("degraded resolve = %v, %v", got, err)
	}
	if !ha.Degraded() {
		t.Fatal("degraded flag not set with all replicas down")
	}
	if ha.Stats().DegradedServes == 0 {
		t.Fatal("degraded serve not counted")
	}

	// A name never resolved before has no cached fallback: that IS a
	// resolve error.
	if _, err := ha.Resolve(ctx, NewName("never-seen")); err == nil {
		t.Fatal("uncached resolve with all replicas down succeeded")
	}
	if ha.Stats().ResolveErrors == 0 {
		t.Fatal("resolve error not counted")
	}
}

func TestHAClientAuthoritativeAnswersDoNotFailOver(t *testing.T) {
	a := startNS(t, nil)
	b := startNS(t, nil)
	o := clientORB(t)
	ctx := context.Background()

	ha, err := NewHAClient(o, []orb.ObjectRef{a.ref, b.ref}, HAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The primary is alive and says NotFound: that answer stands, no
	// failover, no resolve-error counting (it is not a transport failure).
	if _, err := ha.Resolve(ctx, NewName("ghost")); !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("err = %v, want NotFound", err)
	}
	s := ha.Stats()
	if s.Failovers != 0 || s.ResolveErrors != 0 {
		t.Fatalf("authoritative NotFound counted as failure: %+v", s)
	}
}

func TestHAClientWritesFailOverToo(t *testing.T) {
	a := startNS(t, nil)
	b := startNS(t, nil)
	o := clientORB(t)
	ctx := context.Background()
	name := NewName("svc")
	ref := testRef("h1:1", "w")

	ha, err := NewHAClient(o, []orb.ObjectRef{a.ref, b.ref}, HAOptions{PerTryTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	a.o.Shutdown()
	if err := ha.BindOfferLease(ctx, name, ref, "h1", time.Minute); err != nil {
		t.Fatalf("bind with dead primary: %v", err)
	}
	if offers, err := b.reg.Offers(name); err != nil || len(offers) != 1 {
		t.Fatalf("offer did not land on the survivor: %v, %v", offers, err)
	}
	if leases, err := ha.ListLeases(ctx, name); err != nil || len(leases) != 1 || leases[0].Offer.LeaseTTL != time.Minute {
		t.Fatalf("ListLeases = %+v, %v", leases, err)
	}
}
