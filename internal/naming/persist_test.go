package naming

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/orb"
)

func populatedRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	if err := r.Bind(NewName("calc"), ref(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.BindNewContext(NewName("apps")); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(NewName("apps", "solver"), ref(2)); err != nil {
		t.Fatal(err)
	}
	if err := r.BindNewContext(NewName("apps", "deep")); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(Name{{ID: "svc", Kind: "v2"}}, ref(3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r.BindOffer(NewName("workers"), Offer{Ref: ref(10 + i), Host: "h"}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func assertRegistriesEqual(t *testing.T, a, b *Registry) {
	t.Helper()
	for _, n := range []Name{NewName("calc"), NewName("apps", "solver"), {{ID: "svc", Kind: "v2"}}} {
		ra, ea := a.ResolveObject(n)
		rb, eb := b.ResolveObject(n)
		if ea != nil || eb != nil || ra != rb {
			t.Fatalf("resolve %v: %v/%v %v/%v", n, ra, ea, rb, eb)
		}
	}
	oa, ea := a.Offers(NewName("workers"))
	ob, eb := b.Offers(NewName("workers"))
	if ea != nil || eb != nil || len(oa) != len(ob) {
		t.Fatalf("offers: %v/%v vs %v/%v", oa, ea, ob, eb)
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("offer %d: %v != %v", i, oa[i], ob[i])
		}
	}
	la, _ := a.List(NewName("apps"))
	lb, _ := b.List(NewName("apps"))
	if len(la) != len(lb) {
		t.Fatalf("list: %v vs %v", la, lb)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := populatedRegistry(t)
	snap := r.Snapshot()
	r2 := NewRegistry()
	if err := r2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	assertRegistriesEqual(t, r, r2)
}

func TestSaveLoadFile(t *testing.T) {
	r := populatedRegistry(t)
	path := filepath.Join(t.TempDir(), "ns.snapshot")
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if err := r2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	assertRegistriesEqual(t, r, r2)
}

func TestLoadFileMissingIsFreshStart(t *testing.T) {
	r := NewRegistry()
	if err := r.LoadFile(filepath.Join(t.TempDir(), "absent")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ResolveObject(NewName("x")); !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRestoreSnapshotCorrupt(t *testing.T) {
	r := NewRegistry()
	cases := [][]byte{
		nil,
		{0},                            // flag only, no version
		{1, 0, 0, 0, 0},                // little-endian flag
		append([]byte{0}, 0, 0, 0, 99), // wrong version
	}
	for i, data := range cases {
		if err := r.RestoreSnapshot(data); err == nil {
			t.Errorf("case %d: corrupt snapshot accepted", i)
		}
	}
}

func TestRestoreSnapshotTruncated(t *testing.T) {
	r := populatedRegistry(t)
	snap := r.Snapshot()
	for _, cut := range []int{6, len(snap) / 2, len(snap) - 3} {
		r2 := NewRegistry()
		if err := r2.RestoreSnapshot(snap[:cut]); err == nil {
			t.Errorf("truncated snapshot (%d bytes) accepted", cut)
		}
	}
}

func TestRestoreSnapshotKeepsOldTreeOnFailure(t *testing.T) {
	r := populatedRegistry(t)
	if err := r.RestoreSnapshot([]byte{0, 1, 2}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	// The original tree must be intact.
	if _, err := r.ResolveObject(NewName("calc")); err != nil {
		t.Fatalf("registry lost state after failed restore: %v", err)
	}
}

func TestSaveFileAtomicOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ns.snapshot")
	r1 := NewRegistry()
	if err := r1.Bind(NewName("a"), ref(1)); err != nil {
		t.Fatal(err)
	}
	if err := r1.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	if err := r2.Bind(NewName("b"), ref(2)); err != nil {
		t.Fatal(err)
	}
	if err := r2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r3 := NewRegistry()
	if err := r3.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := r3.ResolveObject(NewName("b")); err != nil {
		t.Fatalf("second save lost: %v", err)
	}
	if _, err := r3.ResolveObject(NewName("a")); err == nil {
		t.Fatal("first save leaked through")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

// Property: RestoreSnapshot never panics on arbitrary bytes.
func TestQuickRestoreSnapshotNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		r := NewRegistry()
		_ = r.RestoreSnapshot(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshots of randomly built flat registries round trip.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(names []string, group bool) bool {
		r := NewRegistry()
		for i, raw := range names {
			if len(names) > 12 && i >= 12 {
				break
			}
			id := "n" + raw
			n := Name{{ID: id}}
			if group {
				_ = r.BindOffer(n, Offer{Ref: ref(i), Host: raw})
			} else {
				_ = r.Bind(n, ref(i))
			}
		}
		r2 := NewRegistry()
		if err := r2.RestoreSnapshot(r.Snapshot()); err != nil {
			return false
		}
		la, _ := r.List(nil)
		lb, _ := r2.List(nil)
		return len(la) == len(lb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
