package naming

import (
	"math/rand"
	"sync"
)

// Decision reason tokens recorded on resolve spans. Selectors across the
// repo share this vocabulary so traces and tests read uniformly; the
// fallback-* tokens mark resolves that degraded rather than failed.
const (
	ReasonWinnerBest          = "winner-best"
	ReasonRoundRobin          = "round-robin"
	ReasonSingleOffer         = "single-offer"
	ReasonFallbackNoHosts     = "fallback-no-hosts"
	ReasonFallbackRankerError = "fallback-ranker-error"
	ReasonFallbackWinnerDown  = "fallback-winner-down"
	ReasonFallbackStale       = "fallback-stale"
	ReasonFallbackHostUnknown = "fallback-host-unknown"
	// ReasonFallbackDegraded marks resolves served by the cheap fallback
	// because the runtime's adaptive-degradation controller put the
	// selector in degraded mode (load shedding, not a ranking failure).
	ReasonFallbackDegraded = "fallback-degraded"
)

// RoundRobinSelector cycles through a group's offers in registration
// order, independently per name. This models the paper's unmodified
// ("CORBA") naming service baseline: successive resolves spread over the
// registered servers but ignore load entirely.
func RoundRobinSelector() Selector {
	rr := &roundRobin{next: make(map[string]int)}
	return rr
}

type roundRobin struct {
	mu   sync.Mutex
	next map[string]int
}

func (r *roundRobin) Select(name Name, offers []Offer) (Offer, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := name.String()
	i := r.next[k] % len(offers)
	r.next[k] = i + 1
	return offers[i], nil
}

// SelectExplain implements ExplainingSelector.
func (r *roundRobin) SelectExplain(name Name, offers []Offer) (Offer, Decision, error) {
	o, err := r.Select(name, offers)
	return o, Decision{Reason: ReasonRoundRobin}, err
}

// RandomSelector picks a uniformly random offer using the given source
// (nil falls back to a fixed-seed source for reproducibility).
func RandomSelector(rng *rand.Rand) Selector {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	var mu sync.Mutex
	return SelectorFunc(func(_ Name, offers []Offer) (Offer, error) {
		mu.Lock()
		defer mu.Unlock()
		return offers[rng.Intn(len(offers))], nil
	})
}
