package naming

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/orb"
)

// watchNS is one in-process naming replica with a push hub. The hub is
// NOT started: tests call Flush directly so delivery is deterministic.
type watchNS struct {
	o   *orb.ORB
	reg *Registry
	ref orb.ObjectRef
	hub *Hub
	srv *Servant
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func startWatchNS(t *testing.T, sel Selector) *watchNS {
	t.Helper()
	o := orb.New(orb.Options{Name: "ns-watch"})
	t.Cleanup(o.Shutdown)
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	srv := NewServant(reg, sel)
	hub := NewHub(o, reg, HubOptions{Logger: quietLogger(), PushTimeout: time.Second})
	srv.SetHub(hub)
	ref := a.Activate(DefaultKey, srv)
	return &watchNS{o: o, reg: reg, ref: ref, hub: hub, srv: srv}
}

// newTestCache builds a GroupCache on its own client ORB, subscribing
// through ns. The refresh loop is disabled: only pushes (and explicit
// resubscription) may update the cache.
func newTestCache(t *testing.T, ns WatchBinder, opts GroupCacheOptions) *GroupCache {
	t.Helper()
	o := clientORB(t)
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if opts.Refresh == 0 {
		opts.Refresh = -1
	}
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	c := NewGroupCache(a, ns, opts)
	t.Cleanup(c.Close)
	return c
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGroupRefServedFromPushes is the tentpole scenario in miniature:
// after the single subscribing watch call, member death, whole-group
// death and recovery are all observed through pushes — the nameserver
// sees zero resolve requests and exactly one watch request throughout.
func TestGroupRefServedFromPushes(t *testing.T) {
	w := startWatchNS(t, nil)
	co := clientORB(t)
	c := NewClient(co, w.ref)
	cache := newTestCache(t, c, GroupCacheOptions{})
	name := NewName("workers")
	refA := testRef("hA:1", "a")
	refB := testRef("hB:1", "b")
	ctx := context.Background()

	if err := w.reg.BindOffer(name, Offer{Ref: refA, Host: "hA"}); err != nil {
		t.Fatal(err)
	}
	if err := w.reg.BindOffer(name, Offer{Ref: refB, Host: "hB"}); err != nil {
		t.Fatal(err)
	}

	g := cache.Group(name, SpreadRoundRobin)
	seen := map[orb.ObjectRef]int{}
	for i := 0; i < 6; i++ {
		ref, err := g.Pick(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen[ref]++
	}
	if seen[refA] == 0 || seen[refB] == 0 {
		t.Fatalf("round-robin did not reach both members: %v", seen)
	}

	// Member death: the unbind is pushed; picks avoid the dead member
	// with no further naming traffic.
	if err := w.reg.UnbindOffer(name, refA); err != nil {
		t.Fatal(err)
	}
	w.hub.Flush()
	waitUntil(t, "member removal push", func() bool { return len(cache.Members(name)) == 1 })
	for i := 0; i < 4; i++ {
		ref, err := g.Pick(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ref != refB {
			t.Fatalf("picked dead member %v", ref)
		}
	}

	// Whole-group death: picks fail locally (NotFound), not with a
	// resolve storm.
	if err := w.reg.UnbindOffer(name, refB); err != nil {
		t.Fatal(err)
	}
	w.hub.Flush()
	waitUntil(t, "empty membership push", func() bool { return len(cache.Members(name)) == 0 })
	if _, err := g.Pick(ctx); !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("empty group: want NotFound, got %v", err)
	}

	// Recovery: the re-bind is pushed and picks succeed again.
	if err := w.reg.BindOffer(name, Offer{Ref: refA, Host: "hA"}); err != nil {
		t.Fatal(err)
	}
	w.hub.Flush()
	waitUntil(t, "re-bind push", func() bool { return len(cache.Members(name)) == 1 })
	if ref, err := g.Pick(ctx); err != nil || ref != refA {
		t.Fatalf("after re-bind: got %v, %v", ref, err)
	}

	if n := w.srv.Resolves(); n != 0 {
		t.Fatalf("nameserver served %d resolves; pushes should have kept this at 0", n)
	}
	if n := w.srv.WatchRequests(); n != 1 {
		t.Fatalf("nameserver served %d watch requests, want exactly 1", n)
	}
	if w.hub.Pushed() < 3 {
		t.Fatalf("hub pushed %d updates, want >= 3", w.hub.Pushed())
	}
}

// TestWatchEpochGuardRace races binds, lease expiries and re-binds
// against concurrent flushes of the push channel and checks that the
// client's epoch guard never lets older membership overwrite newer: the
// cached epoch is monotone and the final view converges to the
// registry's. Run with -race.
func TestWatchEpochGuardRace(t *testing.T) {
	w := startWatchNS(t, nil)
	co := clientORB(t)
	c := NewClient(co, w.ref)

	// Deterministic registry clock the expiry goroutine can advance.
	base := time.Now()
	var offset atomic.Int64
	w.reg.SetClock(func() time.Time { return base.Add(time.Duration(offset.Load())) })

	var appliedMu sync.Mutex
	var appliedEpochs []uint64
	cache := newTestCache(t, c, GroupCacheOptions{
		OnApply: func(_ Name, epoch uint64, _ int) {
			appliedMu.Lock()
			appliedEpochs = append(appliedEpochs, epoch)
			appliedMu.Unlock()
		},
	})
	name := NewName("racy")
	refA := testRef("hA:1", "a")
	refB := testRef("hB:1", "b")
	if err := w.reg.BindOffer(name, Offer{Ref: refA, Host: "hA"}); err != nil {
		t.Fatal(err)
	}
	g := cache.Group(name, SpreadRoundRobin)
	if _, err := g.Pick(context.Background()); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var mutators, flushers sync.WaitGroup
	// Mutator 1: bind/unbind a plain member.
	mutators.Add(1)
	go func() {
		defer mutators.Done()
		for i := 0; i < 200; i++ {
			_ = w.reg.BindOffer(name, Offer{Ref: refB, Host: "hB"})
			_ = w.reg.UnbindOffer(name, refB)
		}
	}()
	// Mutator 2: bind a leased member, lapse it, re-bind it.
	mutators.Add(1)
	go func() {
		defer mutators.Done()
		leased := testRef("hC:1", "c")
		for i := 0; i < 200; i++ {
			_ = w.reg.BindOffer(name, Offer{Ref: leased, Host: "hC", LeaseTTL: time.Millisecond})
			offset.Add(int64(2 * time.Millisecond))
			w.reg.ExpireOffers()
		}
	}()
	// Two racing flushers standing in for the hub worker plus a
	// concurrent operator-triggered flush.
	for i := 0; i < 2; i++ {
		flushers.Add(1)
		go func() {
			defer flushers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					w.hub.Flush()
				}
			}
		}()
	}
	// Monitor: the cached epoch must never move backwards.
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		var prev uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := cache.Epoch(name)
			if e < prev {
				t.Errorf("cache epoch moved backwards: %d -> %d", prev, e)
				return
			}
			prev = e
		}
	}()

	done := make(chan struct{})
	go func() { mutators.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("race workload did not finish")
	}
	close(stop)
	flushers.Wait()
	<-monitorDone

	// Settle on a final state and converge.
	if err := w.reg.BindOffer(name, Offer{Ref: refB, Host: "hB"}); err != nil {
		t.Fatal(err)
	}
	wantLeases, wantEpoch := w.reg.WatchView(name)
	waitUntil(t, "final convergence", func() bool {
		w.hub.Flush()
		return cache.Epoch(name) >= wantEpoch
	})
	got := cache.Members(name)
	if len(got) != len(wantLeases) {
		t.Fatalf("converged membership has %d members, registry has %d", len(got), len(wantLeases))
	}

	appliedMu.Lock()
	defer appliedMu.Unlock()
	if len(appliedEpochs) == 0 {
		t.Fatal("no membership updates were applied")
	}
	// OnApply runs outside the cache lock, so observation order can be
	// perturbed; the guard's invariant is that the held epoch equals the
	// maximum ever applied.
	var max uint64
	for _, e := range appliedEpochs {
		if e > max {
			max = e
		}
	}
	if held := cache.Epoch(name); held != max {
		t.Fatalf("held epoch %d != max applied epoch %d", held, max)
	}
}

// TestHubDropsUnreachableWatcher: a watcher whose callback cannot be
// reached is evicted after MaxPushFailures consecutive push failures.
func TestHubDropsUnreachableWatcher(t *testing.T) {
	w := startWatchNS(t, nil)
	name := NewName("gone")
	if err := w.reg.BindOffer(name, Offer{Ref: testRef("hA:1", "a"), Host: "hA"}); err != nil {
		t.Fatal(err)
	}
	// 127.0.0.1:1 refuses connections immediately.
	dead := testRef("127.0.0.1:1", "listener")
	w.hub.Watch(name, dead, 0)
	if w.hub.Watchers() != 1 {
		t.Fatalf("watchers = %d, want 1", w.hub.Watchers())
	}
	for i := 0; i < 3; i++ {
		w.hub.Invalidate(name)
		w.hub.Flush()
	}
	if w.hub.Watchers() != 0 {
		t.Fatalf("unreachable watcher not dropped: %d watchers remain", w.hub.Watchers())
	}
	if w.hub.Dropped() == 0 {
		t.Fatal("dropped counter did not move")
	}
}

// TestResubscribeAfterFailover: when the HA client re-pins to a new
// naming replica, the cache re-watches there after a full-jitter backoff
// and keeps receiving pushes from the new replica.
func TestResubscribeAfterFailover(t *testing.T) {
	a := startWatchNS(t, nil)
	b := startWatchNS(t, nil)
	co := clientORB(t)
	ha, err := NewHAClient(co, []orb.ObjectRef{a.ref, b.ref}, HAOptions{
		PerTryTimeout: 500 * time.Millisecond,
		Breaker:       orb.BreakerOptions{Cooldown: 100 * time.Millisecond},
		Logger:        quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}

	group := NewName("workers")
	probe := NewName("probe")
	member := testRef("hA:1", "m")
	for _, ns := range []*watchNS{a, b} {
		if err := ns.reg.BindOffer(group, Offer{Ref: member, Host: "hA"}); err != nil {
			t.Fatal(err)
		}
		if err := ns.reg.Bind(probe, testRef("hP:1", "p")); err != nil {
			t.Fatal(err)
		}
	}

	cache := newTestCache(t, ha, GroupCacheOptions{
		ResubscribeBackoff: orb.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Multiplier: 2, Jitter: 1},
	})
	ha.SetOnFailover(func(string) { cache.Resubscribe() })

	g := cache.Group(group, SpreadRoundRobin)
	ctx := context.Background()
	if _, err := g.Pick(ctx); err != nil {
		t.Fatal(err)
	}
	if n := a.srv.WatchRequests(); n != 1 {
		t.Fatalf("primary served %d watch requests, want 1", n)
	}

	// Kill the primary; the next HA call re-pins to b and fires the
	// failover hook, which resubscribes after jittered backoff.
	a.o.Shutdown()
	if _, err := ha.Resolve(ctx, probe); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "re-watch on new primary", func() bool {
		return b.srv.WatchRequests() >= 1 && cache.Resubscribes() >= 1
	})

	// The new replica's pushes now reach the cache.
	refB := testRef("hB:1", "n")
	if err := b.reg.BindOffer(group, Offer{Ref: refB, Host: "hB"}); err != nil {
		t.Fatal(err)
	}
	b.hub.Flush()
	waitUntil(t, "push from new primary", func() bool { return len(cache.Members(group)) == 2 })
}

// TestHAClientFlagsStaleDegradedServes (satellite 1): with the whole
// control plane down, a cached reference older than its lease TTL is
// still served — availability over freshness — but counted as stale
// rather than handed out silently.
func TestHAClientFlagsStaleDegradedServes(t *testing.T) {
	ns := startNS(t, nil)
	o := clientORB(t)

	base := time.Now()
	var offset atomic.Int64
	clock := func() time.Time { return base.Add(time.Duration(offset.Load())) }
	ha, err := NewHAClient(o, []orb.ObjectRef{ns.ref}, HAOptions{
		PerTryTimeout: 500 * time.Millisecond,
		Breaker:       orb.BreakerOptions{Cooldown: 50 * time.Millisecond},
		Logger:        quietLogger(),
		Clock:         clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	name := NewName("leased")
	ref := testRef("h1:1", "a")
	const ttl = time.Hour
	if err := ha.BindOfferLease(ctx, name, ref, "h1", ttl); err != nil {
		t.Fatal(err)
	}
	if got, err := ha.Resolve(ctx, name); err != nil || got != ref {
		t.Fatalf("resolve: %v, %v", got, err)
	}

	ns.o.Shutdown()

	// Within the TTL: degraded but not stale.
	if got, err := ha.Resolve(ctx, name); err != nil || got != ref {
		t.Fatalf("degraded resolve: %v, %v", got, err)
	}
	st := ha.Stats()
	if st.DegradedServes != 1 || st.StaleServes != 0 {
		t.Fatalf("within TTL: degraded=%d stale=%d, want 1/0", st.DegradedServes, st.StaleServes)
	}

	// Past the TTL: still served, but flagged.
	offset.Store(int64(2 * ttl))
	if got, err := ha.Resolve(ctx, name); err != nil || got != ref {
		t.Fatalf("stale degraded resolve: %v, %v", got, err)
	}
	st = ha.Stats()
	if st.StaleServes != 1 {
		t.Fatalf("past TTL: stale serves = %d, want 1", st.StaleServes)
	}
}
