package naming

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/orb"
)

// startService boots an ORB, an adapter and a naming servant, returning a
// connected client stub.
func startService(t *testing.T, sel Selector) *Client {
	t.Helper()
	o := orb.New(orb.Options{Name: "naming-test"})
	t.Cleanup(o.Shutdown)
	a, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServant(NewRegistry(), sel)
	nsRef := a.Activate(DefaultKey, sv)
	return NewClient(o, nsRef)
}

func TestRemoteBindResolve(t *testing.T) {
	c := startService(t, nil)
	n := NewName("calc")
	target := orb.ObjectRef{TypeID: "T", Addr: "1.2.3.4:5", Key: "calc"}
	if err := c.Bind(context.Background(), n, target); err != nil {
		t.Fatal(err)
	}
	got, err := c.Resolve(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if got != target {
		t.Fatalf("resolve = %v", got)
	}
}

func TestRemoteResolveNotFound(t *testing.T) {
	c := startService(t, nil)
	_, err := c.Resolve(context.Background(), NewName("ghost"))
	if !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteRebindUnbind(t *testing.T) {
	c := startService(t, nil)
	n := NewName("x")
	if err := c.Rebind(context.Background(), n, ref(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebind(context.Background(), n, ref(2)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Resolve(context.Background(), n)
	if err != nil || got != ref(2) {
		t.Fatalf("resolve = %v, %v", got, err)
	}
	if err := c.Unbind(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(context.Background(), n); !orb.IsUserException(err, ExNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteHierarchy(t *testing.T) {
	c := startService(t, nil)
	if err := c.BindNewContext(context.Background(), NewName("apps")); err != nil {
		t.Fatal(err)
	}
	n := NewName("apps", "solver")
	if err := c.Bind(context.Background(), n, ref(5)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Resolve(context.Background(), n)
	if err != nil || got != ref(5) {
		t.Fatalf("resolve = %v, %v", got, err)
	}
	bindings, err := c.List(context.Background(), NewName("apps"))
	if err != nil || len(bindings) != 1 {
		t.Fatalf("list = %+v, %v", bindings, err)
	}
}

func TestRemoteList(t *testing.T) {
	c := startService(t, nil)
	for i := 0; i < 5; i++ {
		if err := c.Bind(context.Background(), NewName(fmt.Sprintf("svc%d", i)), ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	bindings, err := c.List(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 5 {
		t.Fatalf("bindings = %d", len(bindings))
	}
}

func TestRemoteOffersRoundRobinResolve(t *testing.T) {
	c := startService(t, RoundRobinSelector())
	n := NewName("workers")
	for i := 0; i < 3; i++ {
		if err := c.BindOffer(context.Background(), n, ref(i), fmt.Sprintf("node%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	offers, err := c.ListOffers(context.Background(), n)
	if err != nil || len(offers) != 3 {
		t.Fatalf("offers = %+v, %v", offers, err)
	}
	// Resolve cycles through the group.
	for i := 0; i < 6; i++ {
		got, err := c.Resolve(context.Background(), n)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref(i%3) {
			t.Fatalf("resolve %d = %v, want %v", i, got, ref(i%3))
		}
	}
}

func TestRemoteUnbindOffer(t *testing.T) {
	c := startService(t, nil)
	n := NewName("w")
	if err := c.BindOffer(context.Background(), n, ref(0), "h0"); err != nil {
		t.Fatal(err)
	}
	if err := c.BindOffer(context.Background(), n, ref(1), "h1"); err != nil {
		t.Fatal(err)
	}
	if err := c.UnbindOffer(context.Background(), n, ref(0)); err != nil {
		t.Fatal(err)
	}
	offers, err := c.ListOffers(context.Background(), n)
	if err != nil || len(offers) != 1 || offers[0].Host != "h1" {
		t.Fatalf("offers = %+v, %v", offers, err)
	}
}

func TestRemoteSingleOfferBypassesSelector(t *testing.T) {
	called := false
	sel := SelectorFunc(func(_ Name, offers []Offer) (Offer, error) {
		called = true
		return offers[0], nil
	})
	c := startService(t, sel)
	n := NewName("solo")
	if err := c.BindOffer(context.Background(), n, ref(1), "h"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("selector consulted for single offer")
	}
}

func TestRemoteSelectorErrorSurfacesAsUserException(t *testing.T) {
	sel := SelectorFunc(func(_ Name, _ []Offer) (Offer, error) {
		return Offer{}, &orb.UserException{RepoID: ExNoOffer, Detail: "no host available"}
	})
	c := startService(t, sel)
	n := NewName("w")
	for i := 0; i < 2; i++ {
		if err := c.BindOffer(context.Background(), n, ref(i), "h"); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Resolve(context.Background(), n)
	if !orb.IsUserException(err, ExNoOffer) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteBadOperation(t *testing.T) {
	c := startService(t, nil)
	err := c.orb.Call(context.Background(), c.ref, "frobnicate", nil, nil)
	if !orb.IsSystemException(err, orb.ExBadOperation) {
		t.Fatalf("err = %v", err)
	}
}
