package naming

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/cdr"
)

// Registry persistence: the whole naming tree serializes to a CDR
// encapsulation, so a standalone nameserver can survive restarts without
// losing bindings (production naming services persist their trees; the
// format is versioned for forward evolution).
//
// Version history:
//
//	v1 — tree of bindings; group offers carry (ref, host).
//	v2 — adds the registry epoch to the header and lease metadata
//	     (TTL + absolute expiry) to every offer. v1 snapshots are still
//	     readable: their offers load lease-free and the epoch starts at 0.
const persistVersion = 2

// ErrCorruptSnapshot tags every structural decode failure of a snapshot
// (truncation, impossible counts, unknown binding types). Callers test
// with errors.Is; a corrupt store file must never panic the nameserver.
var ErrCorruptSnapshot = errors.New("naming: corrupt snapshot")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptSnapshot, fmt.Sprintf(format, args...))
}

// Snapshot serializes the registry (current format version).
func (r *Registry) Snapshot() []byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return cdr.Encapsulate(func(e *cdr.Encoder) {
		e.PutUint32(persistVersion)
		e.PutUint64(r.epoch)
		snapshotContext(e, r.root)
	})
}

func snapshotContext(e *cdr.Encoder, node *contextNode) {
	e.PutUint32(uint32(len(node.entries)))
	for k, ent := range node.entries {
		id, kind, _ := splitKey(k)
		e.PutString(id)
		e.PutString(kind)
		e.PutUint32(uint32(ent.typ))
		switch ent.typ {
		case BindObject:
			ent.ref.MarshalCDR(e)
		case BindRemote:
			ent.remote.MarshalCDR(e)
		case BindContext:
			snapshotContext(e, ent.ctx)
		case BindGroup:
			e.PutUint32(uint32(len(ent.group)))
			for _, o := range ent.group {
				o.Ref.MarshalCDR(e)
				e.PutString(o.Host)
				e.PutInt64(int64(o.LeaseTTL))
				if o.Expires.IsZero() {
					e.PutInt64(0)
				} else {
					e.PutInt64(o.Expires.UnixNano())
				}
			}
		}
	}
}

// decodeSnapshot parses a snapshot of any supported version.
func decodeSnapshot(data []byte) (root *contextNode, epoch uint64, err error) {
	d, err := cdr.OpenEncapsulation(data)
	if err != nil {
		return nil, 0, corruptf("%v", err)
	}
	v := d.GetUint32()
	if err := d.Err(); err != nil {
		return nil, 0, corruptf("%v", err)
	}
	switch v {
	case 1:
		// v1 has no epoch header and no lease metadata.
	case 2:
		epoch = d.GetUint64()
	default:
		return nil, 0, fmt.Errorf("naming: snapshot version %d unsupported", v)
	}
	root, err = restoreContext(d, 0, v)
	if err != nil {
		return nil, 0, err
	}
	return root, epoch, nil
}

// RestoreSnapshot replaces the registry contents with a snapshot,
// including its epoch (v1 snapshots restore at epoch 0).
func (r *Registry) RestoreSnapshot(data []byte) error {
	root, epoch, err := decodeSnapshot(data)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.root = root
	r.epoch = epoch
	r.notifyLocked(nil) // the whole tree changed
	r.mu.Unlock()
	return nil
}

// AdoptSnapshot merges a peer's snapshot using last-writer-wins: the
// whole tree is replaced only when the snapshot's epoch is strictly newer
// than the local one. It returns whether the snapshot was adopted. This
// is the receiving half of nameserver replication — commutative and
// idempotent, so replicas converge regardless of push ordering.
func (r *Registry) AdoptSnapshot(data []byte) (bool, error) {
	root, epoch, err := decodeSnapshot(data)
	if err != nil {
		return false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch <= r.epoch {
		return false, nil
	}
	r.root = root
	r.epoch = epoch
	r.adopts++
	r.notifyLocked(nil) // the whole tree changed
	return true, nil
}

// maxPersistDepth bounds context nesting in snapshots (corruption guard).
const maxPersistDepth = 64

func restoreContext(d *cdr.Decoder, depth int, version uint32) (*contextNode, error) {
	if depth > maxPersistDepth {
		return nil, corruptf("nests deeper than %d contexts", maxPersistDepth)
	}
	n := d.GetUint32()
	if n > 1<<20 {
		return nil, corruptf("context with %d entries", n)
	}
	node := newContextNode()
	for i := uint32(0); i < n; i++ {
		id := d.GetString()
		kind := d.GetString()
		typ := BindingType(d.GetUint32())
		if err := d.Err(); err != nil {
			return nil, corruptf("%v", err)
		}
		ent := &entry{typ: typ}
		switch typ {
		case BindObject:
			if err := ent.ref.UnmarshalCDR(d); err != nil {
				return nil, corruptf("%v", err)
			}
		case BindRemote:
			if err := ent.remote.UnmarshalCDR(d); err != nil {
				return nil, corruptf("%v", err)
			}
		case BindContext:
			sub, err := restoreContext(d, depth+1, version)
			if err != nil {
				return nil, err
			}
			ent.ctx = sub
		case BindGroup:
			cnt := d.GetUint32()
			if cnt > 1<<20 {
				return nil, corruptf("group with %d offers", cnt)
			}
			for j := uint32(0); j < cnt; j++ {
				var o Offer
				if err := o.Ref.UnmarshalCDR(d); err != nil {
					return nil, corruptf("%v", err)
				}
				o.Host = d.GetString()
				if version >= 2 {
					o.LeaseTTL = time.Duration(d.GetInt64())
					if nanos := d.GetInt64(); nanos != 0 {
						o.Expires = time.Unix(0, nanos)
					}
				}
				ent.group = append(ent.group, o)
			}
			if err := d.Err(); err != nil {
				return nil, corruptf("%v", err)
			}
		default:
			return nil, corruptf("unknown binding type %d", typ)
		}
		node.entries[key(Component{ID: id, Kind: kind})] = ent
	}
	if err := d.Err(); err != nil {
		return nil, corruptf("%v", err)
	}
	return node, nil
}

// SaveFile writes the snapshot atomically (write temp + rename).
func (r *Registry) SaveFile(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, r.Snapshot(), 0o644); err != nil {
		return fmt.Errorf("naming: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("naming: save: %w", err)
	}
	return nil
}

// LoadFile restores the registry from a snapshot file. A missing file is
// not an error (fresh start).
func (r *Registry) LoadFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("naming: load: %w", err)
	}
	return r.RestoreSnapshot(raw)
}
