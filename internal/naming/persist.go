package naming

import (
	"fmt"
	"os"

	"repro/internal/cdr"
)

// Registry persistence: the whole naming tree serializes to a CDR
// encapsulation, so a standalone nameserver can survive restarts without
// losing bindings (production naming services persist their trees; the
// format is versioned for forward evolution).

// persistVersion tags the on-disk format.
const persistVersion = 1

// Snapshot serializes the registry.
func (r *Registry) Snapshot() []byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return cdr.Encapsulate(func(e *cdr.Encoder) {
		e.PutUint32(persistVersion)
		snapshotContext(e, r.root)
	})
}

func snapshotContext(e *cdr.Encoder, node *contextNode) {
	e.PutUint32(uint32(len(node.entries)))
	for k, ent := range node.entries {
		id, kind, _ := splitKey(k)
		e.PutString(id)
		e.PutString(kind)
		e.PutUint32(uint32(ent.typ))
		switch ent.typ {
		case BindObject:
			ent.ref.MarshalCDR(e)
		case BindRemote:
			ent.remote.MarshalCDR(e)
		case BindContext:
			snapshotContext(e, ent.ctx)
		case BindGroup:
			e.PutUint32(uint32(len(ent.group)))
			for _, o := range ent.group {
				o.Ref.MarshalCDR(e)
				e.PutString(o.Host)
			}
		}
	}
}

// RestoreSnapshot replaces the registry contents with a snapshot.
func (r *Registry) RestoreSnapshot(data []byte) error {
	d, err := cdr.OpenEncapsulation(data)
	if err != nil {
		return fmt.Errorf("naming: snapshot: %w", err)
	}
	if v := d.GetUint32(); v != persistVersion {
		return fmt.Errorf("naming: snapshot version %d unsupported", v)
	}
	root, err := restoreContext(d, 0)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.root = root
	r.mu.Unlock()
	return nil
}

// maxPersistDepth bounds context nesting in snapshots (corruption guard).
const maxPersistDepth = 64

func restoreContext(d *cdr.Decoder, depth int) (*contextNode, error) {
	if depth > maxPersistDepth {
		return nil, fmt.Errorf("naming: snapshot nests deeper than %d contexts", maxPersistDepth)
	}
	n := d.GetUint32()
	if n > 1<<20 {
		return nil, fmt.Errorf("naming: snapshot context with %d entries", n)
	}
	node := newContextNode()
	for i := uint32(0); i < n; i++ {
		id := d.GetString()
		kind := d.GetString()
		typ := BindingType(d.GetUint32())
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("naming: snapshot: %w", err)
		}
		ent := &entry{typ: typ}
		switch typ {
		case BindObject:
			if err := ent.ref.UnmarshalCDR(d); err != nil {
				return nil, fmt.Errorf("naming: snapshot: %w", err)
			}
		case BindRemote:
			if err := ent.remote.UnmarshalCDR(d); err != nil {
				return nil, fmt.Errorf("naming: snapshot: %w", err)
			}
		case BindContext:
			sub, err := restoreContext(d, depth+1)
			if err != nil {
				return nil, err
			}
			ent.ctx = sub
		case BindGroup:
			cnt := d.GetUint32()
			if cnt > 1<<20 {
				return nil, fmt.Errorf("naming: snapshot group with %d offers", cnt)
			}
			for j := uint32(0); j < cnt; j++ {
				var o Offer
				if err := o.Ref.UnmarshalCDR(d); err != nil {
					return nil, fmt.Errorf("naming: snapshot: %w", err)
				}
				o.Host = d.GetString()
				ent.group = append(ent.group, o)
			}
			if err := d.Err(); err != nil {
				return nil, fmt.Errorf("naming: snapshot: %w", err)
			}
		default:
			return nil, fmt.Errorf("naming: snapshot has unknown binding type %d", typ)
		}
		node.entries[key(Component{ID: id, Kind: kind})] = ent
	}
	return node, nil
}

// SaveFile writes the snapshot atomically (write temp + rename).
func (r *Registry) SaveFile(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, r.Snapshot(), 0o644); err != nil {
		return fmt.Errorf("naming: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("naming: save: %w", err)
	}
	return nil
}

// LoadFile restores the registry from a snapshot file. A missing file is
// not an error (fresh start).
func (r *Registry) LoadFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("naming: load: %w", err)
	}
	return r.RestoreSnapshot(raw)
}
