package naming

import (
	"context"
	"time"

	"repro/internal/cdr"
	"repro/internal/orb"
)

// Client is the typed client stub for the naming service (the generated
// CosNaming stub analogue). All methods are remote calls, and all of them
// transparently follow federation: when an operation's name traverses a
// context mounted from another naming server, the stub re-issues the
// operation there with the remaining name (bounded hop count).
type Client struct {
	orb  *orb.ORB
	ref  orb.ObjectRef
	opts orb.CallOptions
}

// NewClient builds a stub for the naming service at ref.
func NewClient(o *orb.ORB, ref orb.ObjectRef) *Client {
	return &Client{orb: o, ref: ref}
}

// SetCallOptions sets default per-call options (QoS class, tenant id,
// deadline, ...) applied to every operation this stub issues. Call during
// setup, before the stub is shared across goroutines.
func (c *Client) SetCallOptions(opts ...orb.CallOption) {
	c.opts = orb.NewCallOptions(opts...)
}

// Ref returns the service's object reference.
func (c *Client) Ref() orb.ObjectRef { return c.ref }

// follow issues op against the naming service, hopping to remote naming
// servers whenever the reply says resolution continues elsewhere.
// writeArgs renders the operation arguments for the (possibly shortened)
// target name of the current hop. Federation continuations ride the
// call engine's redirect path: each hop swaps both the target reference
// and the remaining name without consuming any retry budget.
func (c *Client) follow(ctx context.Context, name Name, op string, writeArgs func(e *cdr.Encoder, target Name), readReply func(*cdr.Decoder) error) error {
	target := name
	caller := &orb.Caller{
		ORB:     c.orb,
		Opts:    c.opts,
		MaxHops: maxFederationHops,
		Redirect: func(err error) (orb.ObjectRef, bool) {
			fref, rest, ok := decodeFederated(err)
			if ok {
				target = rest
			}
			return fref, ok
		},
	}
	caller.SetRef(c.ref)
	return caller.Invoke(ctx, op,
		func(e *cdr.Encoder) { writeArgs(e, target) },
		readReply)
}

// Bind binds ref under name.
func (c *Client) Bind(ctx context.Context, name Name, ref orb.ObjectRef) error {
	return c.follow(ctx, name, opBind, func(e *cdr.Encoder, target Name) {
		target.MarshalCDR(e)
		ref.MarshalCDR(e)
	}, nil)
}

// Rebind binds ref under name, replacing an existing object binding.
func (c *Client) Rebind(ctx context.Context, name Name, ref orb.ObjectRef) error {
	return c.follow(ctx, name, opRebind, func(e *cdr.Encoder, target Name) {
		target.MarshalCDR(e)
		ref.MarshalCDR(e)
	}, nil)
}

// Unbind removes the binding at name.
func (c *Client) Unbind(ctx context.Context, name Name) error {
	return c.follow(ctx, name, opUnbind, func(e *cdr.Encoder, target Name) {
		target.MarshalCDR(e)
	}, nil)
}

// Resolve returns the reference bound at name. For group bindings the
// service's selector (plain or Winner-driven) picks the offer — this is
// the call whose behaviour the paper changes transparently.
func (c *Client) Resolve(ctx context.Context, name Name) (orb.ObjectRef, error) {
	ref, _, err := c.ResolveLease(ctx, name)
	return ref, err
}

// ResolveLease is Resolve plus the chosen offer's lease TTL (zero for
// leaseless offers, and when talking to a pre-lease server whose reply
// lacks the trailing field). Cache layers use the TTL to age cached
// references instead of serving them silently forever.
func (c *Client) ResolveLease(ctx context.Context, name Name) (orb.ObjectRef, time.Duration, error) {
	var ref orb.ObjectRef
	var ttl time.Duration
	err := c.follow(ctx, name, opResolve,
		func(e *cdr.Encoder, target Name) { target.MarshalCDR(e) },
		func(d *cdr.Decoder) error {
			if err := ref.UnmarshalCDR(d); err != nil {
				return err
			}
			if d.Remaining() >= 8 {
				ttl = time.Duration(d.GetInt64())
			}
			return d.Err()
		})
	return ref, ttl, err
}

// BindNewContext creates a sub-context at name.
func (c *Client) BindNewContext(ctx context.Context, name Name) error {
	return c.follow(ctx, name, opBindNewContext, func(e *cdr.Encoder, target Name) {
		target.MarshalCDR(e)
	}, nil)
}

// BindRemoteContext mounts the naming context served at ref under name
// (federation): operations traversing name continue at that server.
func (c *Client) BindRemoteContext(ctx context.Context, name Name, ref orb.ObjectRef) error {
	return c.follow(ctx, name, opBindRemote, func(e *cdr.Encoder, target Name) {
		target.MarshalCDR(e)
		ref.MarshalCDR(e)
	}, nil)
}

// List returns the bindings in the context at name (nil for the root).
func (c *Client) List(ctx context.Context, name Name) ([]Binding, error) {
	var out []Binding
	err := c.follow(ctx, name, opList,
		func(e *cdr.Encoder, target Name) { target.MarshalCDR(e) },
		func(d *cdr.Decoder) error {
			n := d.GetUint32()
			if n > 1<<20 {
				return &orb.SystemException{Kind: orb.ExMarshal, Detail: "binding list too long"}
			}
			out = make([]Binding, 0, n)
			for i := uint32(0); i < n; i++ {
				bn, err := DecodeName(d)
				if err != nil {
					return err
				}
				out = append(out, Binding{Name: bn, Type: BindingType(d.GetUint32())})
			}
			return d.Err()
		})
	return out, err
}

// BindOffer adds (ref, host) to the group binding at name, creating the
// group if absent. Servers on each host of a NOW register their offers
// this way. The offer has no lease — it stays bound until unbound.
func (c *Client) BindOffer(ctx context.Context, name Name, ref orb.ObjectRef, host string) error {
	return c.BindOfferLease(ctx, name, ref, host, 0)
}

// BindOfferLease is BindOffer with a lease: when ttl is positive the
// server must call RenewLease before it runs out or the registry's
// sweeper unbinds the offer (see StartLeaseRenewer for the helper that
// does this automatically).
func (c *Client) BindOfferLease(ctx context.Context, name Name, ref orb.ObjectRef, host string, ttl time.Duration) error {
	return c.follow(ctx, name, opBindOffer, func(e *cdr.Encoder, target Name) {
		target.MarshalCDR(e)
		ref.MarshalCDR(e)
		e.PutString(host)
		e.PutInt64(int64(ttl))
	}, nil)
}

// RenewLease extends the lease of the offer with reference ref in the
// group at name. Renewing an evicted (or never-bound) offer fails with
// the NotFound user exception; the server should re-register with
// BindOfferLease.
func (c *Client) RenewLease(ctx context.Context, name Name, ref orb.ObjectRef, ttl time.Duration) error {
	return c.follow(ctx, name, opRenewLease, func(e *cdr.Encoder, target Name) {
		target.MarshalCDR(e)
		ref.MarshalCDR(e)
		e.PutInt64(int64(ttl))
	}, nil)
}

// ListLeases returns the offers at name together with their lease TTL and
// remaining time (operator view; `nsadmin leases`).
func (c *Client) ListLeases(ctx context.Context, name Name) ([]OfferLease, error) {
	var out []OfferLease
	err := c.follow(ctx, name, opListLeases,
		func(e *cdr.Encoder, target Name) { target.MarshalCDR(e) },
		func(d *cdr.Decoder) error {
			var err error
			out, err = getLeases(d)
			return err
		})
	return out, err
}

// Watch registers callback for oneway membership pushes about name and
// returns the name's current membership and epoch — one call both
// subscribes and delta-syncs, which is also how a reconnecting client
// catches up. sinceEpoch is the epoch the caller already holds (0 for a
// fresh subscription).
func (c *Client) Watch(ctx context.Context, name Name, callback orb.ObjectRef, sinceEpoch uint64) ([]OfferLease, uint64, error) {
	var out []OfferLease
	var epoch uint64
	err := c.follow(ctx, name, opWatch,
		func(e *cdr.Encoder, target Name) {
			target.MarshalCDR(e)
			callback.MarshalCDR(e)
			e.PutUint64(sinceEpoch)
		},
		func(d *cdr.Decoder) error {
			epoch = d.GetUint64()
			var err error
			out, err = getLeases(d)
			return err
		})
	return out, epoch, err
}

// Unwatch removes callback's subscription for name.
func (c *Client) Unwatch(ctx context.Context, name Name, callback orb.ObjectRef) error {
	return c.follow(ctx, name, opUnwatch, func(e *cdr.Encoder, target Name) {
		target.MarshalCDR(e)
		callback.MarshalCDR(e)
	}, nil)
}

// ListWatches returns the server's watch table (operator view;
// `nsadmin watches`).
func (c *Client) ListWatches(ctx context.Context) ([]WatchInfo, error) {
	var out []WatchInfo
	err := c.follow(ctx, nil, opListWatches,
		func(e *cdr.Encoder, _ Name) {},
		func(d *cdr.Decoder) error {
			n := d.GetUint32()
			if n > 1<<20 {
				return &orb.SystemException{Kind: orb.ExMarshal, Detail: "watch list too long"}
			}
			out = make([]WatchInfo, 0, n)
			for i := uint32(0); i < n; i++ {
				wn, err := DecodeName(d)
				if err != nil {
					return err
				}
				out = append(out, WatchInfo{Name: wn, Watchers: int(d.GetUint32())})
			}
			return d.Err()
		})
	return out, err
}

// SyncState pushes a registry snapshot to the naming server (replication).
// It reports whether the server adopted the snapshot and the server's
// resulting epoch.
func (c *Client) SyncState(ctx context.Context, snapshot []byte) (adopted bool, epoch uint64, err error) {
	err = c.follow(ctx, nil, opSyncState,
		func(e *cdr.Encoder, _ Name) { e.PutBytes(snapshot) },
		func(d *cdr.Decoder) error {
			adopted = d.GetBool()
			epoch = d.GetUint64()
			return d.Err()
		})
	return adopted, epoch, err
}

// UnbindOffer removes the offer with reference ref from the group at name.
func (c *Client) UnbindOffer(ctx context.Context, name Name, ref orb.ObjectRef) error {
	return c.follow(ctx, name, opUnbindOffer, func(e *cdr.Encoder, target Name) {
		target.MarshalCDR(e)
		ref.MarshalCDR(e)
	}, nil)
}

// ListOffers returns the group bound at name.
func (c *Client) ListOffers(ctx context.Context, name Name) ([]Offer, error) {
	var out []Offer
	err := c.follow(ctx, name, opListOffers,
		func(e *cdr.Encoder, target Name) { target.MarshalCDR(e) },
		func(d *cdr.Decoder) error {
			n := d.GetUint32()
			if n > 1<<20 {
				return &orb.SystemException{Kind: orb.ExMarshal, Detail: "offer list too long"}
			}
			out = make([]Offer, 0, n)
			for i := uint32(0); i < n; i++ {
				var o Offer
				if err := o.Ref.UnmarshalCDR(d); err != nil {
					return err
				}
				o.Host = d.GetString()
				out = append(out, o)
			}
			return d.Err()
		})
	return out, err
}
