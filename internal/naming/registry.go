package naming

import (
	"sort"
	"sync"
	"time"

	"repro/internal/orb"
)

// BindingType distinguishes what a name is bound to.
type BindingType uint32

// Binding types.
const (
	BindObject  BindingType = iota // a single object reference
	BindContext                    // a sub-context
	BindGroup                      // a group of offers (load-distribution extension)
	BindRemote                     // a context served by another naming server (federation)
)

// Offer is one member of a group binding: an object reference plus the
// logical host it runs on (the information the Winner selector needs).
// Offers may carry a lease: a TTL the registering server must keep
// renewing, and the absolute instant the current lease runs out. A zero
// LeaseTTL means the offer never expires (the pre-lease behaviour).
type Offer struct {
	Ref  orb.ObjectRef
	Host string
	// LeaseTTL is the renewal interval granted at bind/renew time (0: no
	// lease).
	LeaseTTL time.Duration
	// Expires is when the lease runs out (zero: no lease). Maintained by
	// the registry; ignored on input to BindOffer.
	Expires time.Time
}

// expired reports whether the offer's lease has run out at t.
func (o Offer) expired(t time.Time) bool {
	return !o.Expires.IsZero() && t.After(o.Expires)
}

// Binding summarises one entry of a context listing.
type Binding struct {
	Name Name // single-component name within the listed context
	Type BindingType
}

// User-exception repository ids raised by the service (CosNaming analogue).
const (
	ExNotFound     = "IDL:repro/CosNaming/NotFound:1.0"
	ExAlreadyBound = "IDL:repro/CosNaming/AlreadyBound:1.0"
	ExNotContext   = "IDL:repro/CosNaming/NotContext:1.0"
	ExInvalidName  = "IDL:repro/CosNaming/InvalidName:1.0"
	ExNoOffer      = "IDL:repro/CosNaming/NoOffer:1.0"
)

func errNotFound(n Name) error {
	return &orb.UserException{RepoID: ExNotFound, Detail: n.String()}
}
func errAlreadyBound(n Name) error {
	return &orb.UserException{RepoID: ExAlreadyBound, Detail: n.String()}
}
func errNotContext(n Name) error {
	return &orb.UserException{RepoID: ExNotContext, Detail: n.String()}
}
func errInvalidName(reason string) error {
	return &orb.UserException{RepoID: ExInvalidName, Detail: reason}
}

// entry is one slot in a context: exactly one of ref/ctx/group/remote is
// set according to typ.
type entry struct {
	typ    BindingType
	ref    orb.ObjectRef
	ctx    *contextNode
	group  []Offer
	remote orb.ObjectRef
}

// contextNode is one naming context in the tree.
type contextNode struct {
	entries map[string]*entry
}

func newContextNode() *contextNode {
	return &contextNode{entries: make(map[string]*entry)}
}

// key flattens a component for map lookup.
func key(c Component) string { return c.ID + "\x00" + c.Kind }

// Registry is the in-memory naming tree. It is the state behind the
// naming service servant but is also usable in-process. All methods are
// safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	root *contextNode
	// epoch counts mutations monotonically. Replicas ship snapshots
	// stamped with their epoch and adopt only strictly newer state
	// (last-writer-wins gossip), so a restarted or lagging replica never
	// clobbers fresher bindings.
	epoch uint64
	// adopts counts snapshots adopted from peers (replication metric).
	adopts uint64
	// now is the lease clock (time.Now outside tests).
	now func() time.Time
	// watchNotify, when set, observes every membership-changing mutation
	// (bind, rebind, unbind, offer bound/unbound/evicted, snapshot
	// adoption). It is called under the registry lock, so implementations
	// must only record the name and return (the Hub records a dirty name
	// and kicks its worker). A nil Name means "everything may have
	// changed" (snapshot replaced the tree).
	watchNotify func(n Name)
	// offerObserver, when set, observes individual offer lifecycle
	// transitions (bound=true on BindOffer, bound=false on UnbindOffer and
	// sweeper eviction). Like watchNotify it runs under the registry lock
	// and must only record and return; a cluster.OfferTracker turns these
	// into host-level membership Join/Leave events.
	offerObserver func(n Name, o Offer, bound bool)
}

// NewRegistry creates an empty naming tree.
func NewRegistry() *Registry { return &Registry{root: newContextNode(), now: time.Now} }

// SetClock overrides the lease clock (tests).
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// SetWatchNotify installs the mutation observer the push Hub feeds on.
// fn runs under the registry lock on every membership-changing mutation
// and must not call back into the registry; a nil Name argument means
// the whole tree may have changed (snapshot adoption). Lease renewals do
// NOT notify: membership is unchanged and pushing every renewal would
// turn the heartbeat traffic into a push storm.
func (r *Registry) SetWatchNotify(fn func(n Name)) {
	r.mu.Lock()
	r.watchNotify = fn
	r.mu.Unlock()
}

// SetOfferObserver installs the offer lifecycle observer. fn runs under
// the registry lock on every BindOffer, UnbindOffer and sweeper eviction
// and must not call back into the registry. Snapshot adoption does not
// feed the observer: replicated state changes wholesale and the adopting
// replica is not the membership authority for it.
func (r *Registry) SetOfferObserver(fn func(n Name, o Offer, bound bool)) {
	r.mu.Lock()
	r.offerObserver = fn
	r.mu.Unlock()
}

// notifyLocked forwards a mutation to the watch observer. Callers hold
// r.mu.
func (r *Registry) notifyLocked(n Name) {
	if r.watchNotify != nil {
		r.watchNotify(n)
	}
}

// observeOfferLocked forwards an offer transition to the offer observer.
// Callers hold r.mu.
func (r *Registry) observeOfferLocked(n Name, o Offer, bound bool) {
	if r.offerObserver != nil {
		r.offerObserver(n, o, bound)
	}
}

// Epoch returns the registry's mutation counter.
func (r *Registry) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// SnapshotsAdopted returns how many peer snapshots this registry has
// adopted (see AdoptSnapshot).
func (r *Registry) SnapshotsAdopted() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.adopts
}

// walk descends to the context holding the last component of n, creating
// nothing. Returns the node and the final component.
func (r *Registry) walk(n Name) (*contextNode, Component, error) {
	node := r.root
	for i := 0; i < len(n)-1; i++ {
		e, ok := node.entries[key(n[i])]
		if !ok {
			return nil, Component{}, errNotFound(n[:i+1])
		}
		switch e.typ {
		case BindContext:
			node = e.ctx
		case BindRemote:
			// Resolution continues at another naming server.
			return nil, Component{}, remoteSignal(e, n, i+1)
		default:
			return nil, Component{}, errNotContext(n[:i+1])
		}
	}
	return node, n[len(n)-1], nil
}

// Bind binds ref under n; it fails with AlreadyBound if n is taken.
func (r *Registry) Bind(n Name, ref orb.ObjectRef) error {
	if err := n.Validate(); err != nil {
		return errInvalidName(err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	node, last, err := r.walk(n)
	if err != nil {
		return err
	}
	if _, ok := node.entries[key(last)]; ok {
		return errAlreadyBound(n)
	}
	node.entries[key(last)] = &entry{typ: BindObject, ref: ref}
	r.epoch++
	r.notifyLocked(n)
	return nil
}

// Rebind binds ref under n, replacing any existing object binding.
// Rebinding over a context or group fails with NotContext/AlreadyBound
// respectively, so structural bindings are not silently destroyed.
func (r *Registry) Rebind(n Name, ref orb.ObjectRef) error {
	if err := n.Validate(); err != nil {
		return errInvalidName(err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	node, last, err := r.walk(n)
	if err != nil {
		return err
	}
	if e, ok := node.entries[key(last)]; ok {
		switch e.typ {
		case BindContext:
			return errNotContext(n)
		case BindGroup:
			return errAlreadyBound(n)
		}
	}
	node.entries[key(last)] = &entry{typ: BindObject, ref: ref}
	r.epoch++
	r.notifyLocked(n)
	return nil
}

// BindNewContext creates (and binds) a fresh sub-context at n.
func (r *Registry) BindNewContext(n Name) error {
	if err := n.Validate(); err != nil {
		return errInvalidName(err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	node, last, err := r.walk(n)
	if err != nil {
		return err
	}
	if _, ok := node.entries[key(last)]; ok {
		return errAlreadyBound(n)
	}
	node.entries[key(last)] = &entry{typ: BindContext, ctx: newContextNode()}
	r.epoch++
	return nil
}

// Unbind removes the binding at n (object, context or group).
func (r *Registry) Unbind(n Name) error {
	if err := n.Validate(); err != nil {
		return errInvalidName(err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	node, last, err := r.walk(n)
	if err != nil {
		return err
	}
	if _, ok := node.entries[key(last)]; !ok {
		return errNotFound(n)
	}
	delete(node.entries, key(last))
	r.epoch++
	r.notifyLocked(n)
	return nil
}

// ResolveObject resolves n to a single object binding.
func (r *Registry) ResolveObject(n Name) (orb.ObjectRef, error) {
	if err := n.Validate(); err != nil {
		return orb.ObjectRef{}, errInvalidName(err.Error())
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	node, last, err := r.walk(n)
	if err != nil {
		return orb.ObjectRef{}, err
	}
	e, ok := node.entries[key(last)]
	if !ok {
		return orb.ObjectRef{}, errNotFound(n)
	}
	switch e.typ {
	case BindObject:
		return e.ref, nil
	case BindRemote:
		// Resolving the mount point itself yields the remote context's
		// own reference (CosNaming semantics: contexts are objects).
		return e.remote, nil
	default:
		return orb.ObjectRef{}, errNotContext(n)
	}
}

// BindOffer adds an offer to the group binding at n, creating the group if
// n is unbound. Adding to an object/context binding fails. When
// offer.LeaseTTL is positive the offer is leased: the registry stamps its
// expiry and the server must RenewLease before it runs out or the sweeper
// unbinds it.
func (r *Registry) BindOffer(n Name, offer Offer) error {
	if err := n.Validate(); err != nil {
		return errInvalidName(err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if offer.LeaseTTL > 0 {
		offer.Expires = r.now().Add(offer.LeaseTTL)
	} else {
		offer.LeaseTTL, offer.Expires = 0, time.Time{}
	}
	node, last, err := r.walk(n)
	if err != nil {
		return err
	}
	e, ok := node.entries[key(last)]
	if !ok {
		node.entries[key(last)] = &entry{typ: BindGroup, group: []Offer{offer}}
		r.epoch++
		r.notifyLocked(n)
		r.observeOfferLocked(n, offer, true)
		return nil
	}
	if e.typ != BindGroup {
		return errAlreadyBound(n)
	}
	for _, o := range e.group {
		if o.Ref == offer.Ref {
			return errAlreadyBound(n)
		}
	}
	e.group = append(e.group, offer)
	r.epoch++
	r.notifyLocked(n)
	r.observeOfferLocked(n, offer, true)
	return nil
}

// RenewLease extends the lease of the offer with reference ref in the
// group at n. A non-positive ttl clears the lease (the offer becomes
// permanent). Renewing an offer that is not bound — including one the
// sweeper already evicted — fails with NotFound, which tells the server
// to re-register via BindOffer.
func (r *Registry) RenewLease(n Name, ref orb.ObjectRef, ttl time.Duration) error {
	if err := n.Validate(); err != nil {
		return errInvalidName(err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	node, last, err := r.walk(n)
	if err != nil {
		return err
	}
	e, ok := node.entries[key(last)]
	if !ok || e.typ != BindGroup {
		return errNotFound(n)
	}
	for i := range e.group {
		if e.group[i].Ref == ref {
			if ttl > 0 {
				e.group[i].LeaseTTL = ttl
				e.group[i].Expires = r.now().Add(ttl)
			} else {
				e.group[i].LeaseTTL = 0
				e.group[i].Expires = time.Time{}
			}
			r.epoch++
			return nil
		}
	}
	return errNotFound(n)
}

// ExpiredOffer reports one offer the sweeper evicted.
type ExpiredOffer struct {
	Name  Name
	Offer Offer
}

// ExpireOffers removes every offer whose lease has run out, removing
// groups that become empty, and returns what was evicted. It is the
// sweeper's step function.
func (r *Registry) ExpireOffers() []ExpiredOffer {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	var evicted []ExpiredOffer
	expireNode(r.root, nil, now, &evicted)
	if len(evicted) > 0 {
		r.epoch++
		seen := make(map[string]bool, len(evicted))
		for _, ev := range evicted {
			if k := ev.Name.String(); !seen[k] {
				seen[k] = true
				r.notifyLocked(ev.Name)
			}
			r.observeOfferLocked(ev.Name, ev.Offer, false)
		}
	}
	return evicted
}

// expireNode walks the tree collecting and removing expired offers.
func expireNode(node *contextNode, prefix Name, now time.Time, out *[]ExpiredOffer) {
	for k, e := range node.entries {
		id, kind, _ := splitKey(k)
		name := append(append(Name{}, prefix...), Component{ID: id, Kind: kind})
		switch e.typ {
		case BindContext:
			expireNode(e.ctx, name, now, out)
		case BindGroup:
			kept := e.group[:0]
			for _, o := range e.group {
				if o.expired(now) {
					*out = append(*out, ExpiredOffer{Name: name, Offer: o})
				} else {
					kept = append(kept, o)
				}
			}
			e.group = kept
			if len(e.group) == 0 {
				delete(node.entries, k)
			}
		}
	}
}

// UnbindOffer removes the offer with the given reference from the group at
// n. Removing the last offer removes the group binding itself.
func (r *Registry) UnbindOffer(n Name, ref orb.ObjectRef) error {
	if err := n.Validate(); err != nil {
		return errInvalidName(err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	node, last, err := r.walk(n)
	if err != nil {
		return err
	}
	e, ok := node.entries[key(last)]
	if !ok || e.typ != BindGroup {
		return errNotFound(n)
	}
	for i, o := range e.group {
		if o.Ref == ref {
			e.group = append(e.group[:i], e.group[i+1:]...)
			if len(e.group) == 0 {
				delete(node.entries, key(last))
			}
			r.epoch++
			r.notifyLocked(n)
			r.observeOfferLocked(n, o, false)
			return nil
		}
	}
	return errNotFound(n)
}

// Offers returns a copy of the group bound at n. A single object binding
// is returned as a one-offer group, so group-aware resolvers work
// uniformly over both binding styles.
func (r *Registry) Offers(n Name) ([]Offer, error) {
	if err := n.Validate(); err != nil {
		return nil, errInvalidName(err.Error())
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	node, last, err := r.walk(n)
	if err != nil {
		return nil, err
	}
	e, ok := node.entries[key(last)]
	if !ok {
		return nil, errNotFound(n)
	}
	switch e.typ {
	case BindObject:
		return []Offer{{Ref: e.ref}}, nil
	case BindRemote:
		return []Offer{{Ref: e.remote}}, nil
	case BindGroup:
		out := make([]Offer, len(e.group))
		copy(out, e.group)
		return out, nil
	default:
		return nil, errNotContext(n)
	}
}

// OfferLease pairs an offer with how much of its lease is left: the
// operator view behind `nsadmin leases`.
type OfferLease struct {
	Offer Offer
	// Remaining is the time until the lease runs out (zero for leaseless
	// offers; negative when expired but not yet swept).
	Remaining time.Duration
}

// Leases returns the offers at n with their remaining lease time.
func (r *Registry) Leases(n Name) ([]OfferLease, error) {
	offers, err := r.Offers(n)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	now := r.now()
	r.mu.RUnlock()
	out := make([]OfferLease, 0, len(offers))
	for _, o := range offers {
		l := OfferLease{Offer: o}
		if !o.Expires.IsZero() {
			l.Remaining = o.Expires.Sub(now)
		}
		out = append(out, l)
	}
	return out, nil
}

// LiveOffers is Offers minus offers whose lease has already run out:
// what resolve hands to the selector. Expired-but-unswept offers are
// invisible to clients even before the sweeper removes them, so a lease
// that lapses between sweeps cannot leak a dead reference. A group whose
// offers are all expired resolves as NotFound.
func (r *Registry) LiveOffers(n Name) ([]Offer, error) {
	offers, err := r.Offers(n)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	now := r.now()
	r.mu.RUnlock()
	live := offers[:0]
	for _, o := range offers {
		if !o.expired(now) {
			live = append(live, o)
		}
	}
	if len(live) == 0 {
		return nil, errNotFound(n)
	}
	return live, nil
}

// WatchView returns the live membership at n together with the registry
// epoch, both read under a single lock acquisition. That atomicity is
// what makes the push protocol's epoch guard sound: membership read in
// one critical section can never be stamped with an epoch from a later
// one (a stale view with a newer epoch would be kept by clients
// forever). Unlike LiveOffers, an absent or fully-expired name is not an
// error here — it is an empty membership, which is exactly what a
// watcher must learn when the whole group dies. Object bindings show as
// a single leaseless member, mirroring Offers.
func (r *Registry) WatchView(n Name) ([]OfferLease, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	epoch := r.epoch
	if n.Validate() != nil {
		return nil, epoch
	}
	node, last, err := r.walk(n)
	if err != nil {
		return nil, epoch
	}
	e, ok := node.entries[key(last)]
	if !ok {
		return nil, epoch
	}
	now := r.now()
	var out []OfferLease
	switch e.typ {
	case BindObject:
		out = []OfferLease{{Offer: Offer{Ref: e.ref}}}
	case BindRemote:
		out = []OfferLease{{Offer: Offer{Ref: e.remote}}}
	case BindGroup:
		for _, o := range e.group {
			if o.expired(now) {
				continue
			}
			l := OfferLease{Offer: o}
			if !o.Expires.IsZero() {
				l.Remaining = o.Expires.Sub(now)
			}
			out = append(out, l)
		}
	}
	return out, epoch
}

// List returns the bindings of the context at n (nil n lists the root),
// sorted by name for deterministic output.
func (r *Registry) List(n Name) ([]Binding, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	node := r.root
	if len(n) > 0 {
		parent, last, err := r.walk(n)
		if err != nil {
			return nil, err
		}
		e, ok := parent.entries[key(last)]
		if !ok {
			return nil, errNotFound(n)
		}
		switch e.typ {
		case BindContext:
			node = e.ctx
		case BindRemote:
			// Listing a mount point lists the remote server's root.
			return nil, remoteSignal(e, n, len(n))
		default:
			return nil, errNotContext(n)
		}
	}
	out := make([]Binding, 0, len(node.entries))
	for k, e := range node.entries {
		id, kind, _ := splitKey(k)
		out = append(out, Binding{Name: Name{{ID: id, Kind: kind}}, Type: e.typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name.String() < out[j].Name.String() })
	return out, nil
}

func splitKey(k string) (id, kind string, ok bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:], true
		}
	}
	return k, "", false
}
