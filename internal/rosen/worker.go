package rosen

import (
	"context"
	"sync"

	"repro/internal/cdr"
	"repro/internal/cluster"
	"repro/internal/opt"
	"repro/internal/orb"
)

// Worker is the subproblem-solver servant. It is stateful — it keeps the
// best block solution seen so far as a warm start for the next solve —
// and checkpointable, so it can be driven through the fault-tolerance
// proxies: after a crash, the warm-start state is restored into a fresh
// worker and the computation continues rather than starting cold.
type Worker struct {
	// host, when set, charges virtual compute cost per objective
	// evaluation (Figure 3 simulation mode). When nil the worker runs in
	// real time (Table 1 measurement mode).
	host *cluster.Host

	mu     sync.Mutex
	warm   []float64
	warmF  float64
	solves int64
}

// NewWorker creates a worker. host may be nil for real-time mode.
func NewWorker(host *cluster.Host) *Worker { return &Worker{host: host, warmF: 0} }

// TypeID implements orb.Servant.
func (w *Worker) TypeID() string { return WorkerTypeID }

// Solves returns the number of solve calls served.
func (w *Worker) Solves() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.solves
}

// Invoke implements orb.Servant.
func (w *Worker) Invoke(sctx *orb.ServerContext, op string, in *cdr.Decoder, out *cdr.Encoder) error {
	if op != OpSolve {
		return orb.BadOperation(op)
	}
	var req SolveRequest
	if err := req.UnmarshalCDR(in); err != nil {
		return &orb.SystemException{Kind: orb.ExMarshal, Detail: err.Error()}
	}
	reply, err := w.solve(sctx.Context(), &req)
	if err != nil {
		return err
	}
	reply.MarshalCDR(out)
	return nil
}

// solve runs one Complex Box optimization of the worker's subproblem.
// The iteration loop polls ctx so a cancelled or expired caller stops the
// optimization instead of burning the host for a reply nobody wants.
func (w *Worker) solve(ctx context.Context, req *SolveRequest) (*SolveReply, error) {
	d, err := opt.NewDecomposition(int(req.N), int(req.Workers))
	if err != nil {
		return nil, &orb.UserException{RepoID: ExBadSolve, Detail: err.Error()}
	}
	if int(req.Index) < 0 || int(req.Index) >= int(req.Workers) {
		return nil, &orb.UserException{RepoID: ExBadSolve, Detail: "worker index out of range"}
	}
	if req.Lo >= req.Hi {
		return nil, &orb.UserException{RepoID: ExBadSolve, Detail: "empty bounds"}
	}
	global := opt.UniformBounds(int(req.N), req.Lo, req.Hi)
	obj, err := d.SubproblemObjective(int(req.Index), req.Boundary)
	if err != nil {
		return nil, &orb.UserException{RepoID: ExBadSolve, Detail: err.Error()}
	}
	bounds, err := d.SubproblemBounds(int(req.Index), global)
	if err != nil {
		return nil, &orb.UserException{RepoID: ExBadSolve, Detail: err.Error()}
	}

	// Charge virtual CPU per evaluation in simulation mode. The cost
	// scales with the subproblem dimension, like the real flop count.
	charged := obj
	if w.host != nil && req.EvalCost > 0 {
		unit := req.EvalCost * float64(bounds.Dim())
		host := w.host
		charged = func(x []float64) float64 {
			_ = host.Compute(unit)
			return obj(x)
		}
		host.BeginJob()
		defer host.EndJob()
	}

	w.mu.Lock()
	var start []float64
	if len(w.warm) == bounds.Dim() {
		start = append([]float64(nil), w.warm...)
	}
	w.mu.Unlock()

	res, err := opt.MinimizeComplexBox(charged, bounds, opt.ComplexBoxOptions{
		MaxIterations: int(req.MaxIterations),
		Seed:          req.Seed,
		Start:         start,
		Stop:          func() bool { return ctx.Err() != nil },
	})
	if err != nil {
		return nil, &orb.SystemException{Kind: orb.ExInternal, Detail: err.Error()}
	}
	if w.host != nil && w.host.Failed() {
		return nil, orb.CommFailure("host failed during solve")
	}
	if cerr := ctx.Err(); cerr != nil {
		// The caller is gone; report the abort instead of a bogus result
		// (the reply is discarded client-side anyway).
		kind := orb.ExCancelled
		if cerr == context.DeadlineExceeded {
			kind = orb.ExTimeout
		}
		return nil, &orb.SystemException{Kind: kind, Detail: "solve aborted: " + cerr.Error()}
	}

	w.mu.Lock()
	w.solves++
	if w.warm == nil || bounds.Dim() != len(w.warm) || res.F <= w.warmF {
		w.warm = append([]float64(nil), res.X...)
		w.warmF = res.F
	}
	w.mu.Unlock()

	return &SolveReply{Block: res.X, Value: res.F, Evaluations: int64(res.Evaluations)}, nil
}

// Checkpoint implements ft.Checkpointable: the serialized warm-start
// state.
func (w *Worker) Checkpoint() ([]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e := cdr.NewEncoder(32 + 8*len(w.warm))
	e.PutFloat64Seq(w.warm)
	e.PutFloat64(w.warmF)
	e.PutInt64(w.solves)
	return e.Bytes(), nil
}

// Restore implements ft.Checkpointable.
func (w *Worker) Restore(data []byte) error {
	d := cdr.NewDecoder(data)
	warm := d.GetFloat64Seq()
	warmF := d.GetFloat64()
	solves := d.GetInt64()
	if err := d.Err(); err != nil {
		return err
	}
	w.mu.Lock()
	w.warm = warm
	w.warmF = warmF
	w.solves = solves
	w.mu.Unlock()
	return nil
}
