package rosen

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/cdr"
	"repro/internal/cluster"
	"repro/internal/ft"
	"repro/internal/opt"
	"repro/internal/orb"
)

// errInterrupted aborts a segment whose membership epoch ended mid-run;
// the elastic loop discards the partial result and re-decomposes.
var errInterrupted = errors.New("rosen: segment interrupted by membership change")

// ElasticOptions configure elastic re-decomposition: the manager
// subscribes to the cluster membership view and, on worker Join/Leave,
// checkpoints boundary state, recomputes the decomposition for the new
// width and rebalances the subproblems mid-run.
//
// Determinism contract: every segment restarts the full bilevel
// optimization from Config.Seed at the current width, and workers are
// reset to their initial state at each segment start (Proxy.Seed with an
// empty checkpoint). An interrupted segment's partial result is
// discarded, so the final, uninterrupted segment is indistinguishable —
// bitwise — from a fixed-pool run at the final width.
type ElasticOptions struct {
	// Membership is the cluster view whose Join/Leave events drive
	// re-decomposition (required).
	Membership *cluster.Membership
	// MinWorkers is the smallest width worth running (default 1). Below
	// it the manager parks and waits for capacity.
	MinWorkers int
	// MaxWorkers caps the width (default and hard cap: opt.MaxWorkers(N),
	// the decomposition's structural limit).
	MaxWorkers int
	// Proactive attaches one ft.Migrator per worker proxy each segment;
	// Degrading events then move checkpointed state to a healthy host
	// before the source dies, without interrupting the segment.
	Proactive bool
	// MigrateOptions extend the per-segment proactive migrators (offer
	// source, target filter, claimer, ...). MigrateMembership is added
	// automatically.
	MigrateOptions []ft.MigrateOption
	// RebalanceGrace is how long a failed segment waits for membership to
	// change before retrying against an unchanged pool (default 2s).
	RebalanceGrace time.Duration
	// Logger records segment transitions.
	Logger *slog.Logger
	// OnSegment, when set, observes each segment start with its ordinal
	// and width. Tests use it to inject membership changes mid-run.
	OnSegment func(segment, workers int)
}

// ElasticStats report an elastic run's shape.
type ElasticStats struct {
	// Segments is the number of segments started (including interrupted
	// and failed ones).
	Segments int
	// Interrupts counts segments aborted by a mid-run membership change.
	Interrupts int
	// Retries counts segments that failed with a real error and were
	// retried after re-placement.
	Retries int
	// Proactive sums Degrading-triggered migrations across all segments.
	Proactive uint64
	// Migrations sums all migrations (reactive and proactive).
	Migrations int
	// FinalWorkers is the width of the segment that ran to completion.
	FinalWorkers int
	// ProxyStats accumulates fault-tolerance counters over every
	// placement the run went through (Manager.ProxyStats only covers the
	// current one).
	ProxyStats ft.Stats
}

// OfferReleaser is implemented by resolvers that hand out exclusive
// claims on offers; elastic teardown returns every placed reference
// through it so the next segment (or another manager) can claim them.
type OfferReleaser interface {
	Release(ref orb.ObjectRef)
}

// WithElastic switches Run to elastic mode. Requires WithFT (checkpoint/
// restore carries worker state across segments) and is incompatible with
// active replication.
func (m *Manager) WithElastic(opts ElasticOptions) *Manager {
	m.elastic = &opts
	return m
}

// ElasticStats returns a snapshot of the elastic run counters.
func (m *Manager) ElasticStats() ElasticStats {
	m.esMu.Lock()
	defer m.esMu.Unlock()
	return m.es
}

// Proxies returns the fault-tolerant proxies of the current placement
// (nil entries never occur; empty without WithFT or after teardown).
func (m *Manager) Proxies() []*ft.Proxy {
	var out []*ft.Proxy
	for _, h := range m.handles {
		if ph, ok := h.(proxyHandle); ok {
			out = append(out, ph.p)
		}
	}
	return out
}

// workerResetState is the CDR image of a freshly constructed worker
// (no warm simplex, zero solves); seeding it at segment start erases any
// warm-start state a previous segment left behind, which would otherwise
// perturb the deterministic restart.
func workerResetState() []byte {
	e := cdr.NewEncoder(16)
	e.PutFloat64Seq(nil)
	e.PutFloat64(0)
	e.PutInt64(0)
	return e.Bytes()
}

// width computes the segment width for the current membership: alive
// hosts clamped to [MinWorkers, MaxWorkers]; 0 (park) below the minimum.
func (m *Manager) width(min, max int) int {
	alive := m.elastic.Membership.AliveCount()
	if alive < min {
		return 0
	}
	if alive > max {
		return max
	}
	return alive
}

// runElastic is the segmented re-decomposition loop: pick a width from
// the membership view, run a full segment at it, and either return its
// result (no membership change interrupted it) or tear the placement
// down and go again at the new width.
func (m *Manager) runElastic(ctx context.Context) (*Result, error) {
	el := m.elastic
	if el.Membership == nil {
		return nil, errors.New("rosen: elastic mode requires ElasticOptions.Membership")
	}
	if m.ftOpts == nil {
		return nil, errors.New("rosen: elastic mode requires WithFT (checkpoints carry state across segments)")
	}
	if m.cfg.Replication > 1 {
		return nil, errors.New("rosen: elastic mode is incompatible with active replication")
	}
	minW := el.MinWorkers
	if minW < 1 {
		minW = 1
	}
	maxW := el.MaxWorkers
	if lim := opt.MaxWorkers(m.cfg.N); maxW <= 0 || maxW > lim {
		maxW = lim
	}
	if minW > maxW {
		return nil, fmt.Errorf("rosen: elastic MinWorkers %d > MaxWorkers %d", minW, maxW)
	}
	grace := el.RebalanceGrace
	if grace <= 0 {
		grace = 2 * time.Second
	}

	// One subscription for the whole run: segments poll width() to decide
	// interruption; the channel only wakes the park/retry waits.
	ch, cancel := el.Membership.Subscribe()
	defer cancel()
	defer m.teardown()

	noChange := 0
	for seg := 1; ; seg++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := m.width(minW, maxW)
		if w == 0 {
			// Not enough capacity — park until membership moves.
			if el.Logger != nil {
				el.Logger.Info("rosen: elastic run parked",
					"alive", el.Membership.AliveCount(), "min_workers", minW)
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-ch:
			}
			seg--
			continue
		}
		drainEvents(ch)
		seqAtStart := el.Membership.Seq()
		res, err := m.runOneSegment(ctx, seg, w, minW, maxW)
		if res != nil {
			m.esMu.Lock()
			m.es.FinalWorkers = w
			m.esMu.Unlock()
			if el.Logger != nil {
				el.Logger.Info("rosen: elastic run converged",
					"segments", seg, "workers", w, "f", res.F)
			}
			return res, nil
		}
		if errors.Is(err, errInterrupted) {
			m.esMu.Lock()
			m.es.Interrupts++
			m.esMu.Unlock()
			if el.Logger != nil {
				el.Logger.Info("rosen: segment interrupted, re-decomposing",
					"segment", seg, "workers", w, "alive", el.Membership.AliveCount())
			}
			noChange = 0
			continue
		}
		if ctx.Err() != nil {
			return nil, err
		}
		// A real error (a worker died faster than the detector noticed, a
		// placement raced an expiring offer): retry freely as long as the
		// membership keeps changing; against an unchanged pool allow a few
		// grace-bounded retries, then surface the error.
		m.esMu.Lock()
		m.es.Retries++
		m.esMu.Unlock()
		if el.Logger != nil {
			el.Logger.Warn("rosen: segment failed, retrying", "segment", seg, "err", err)
		}
		if el.Membership.Seq() != seqAtStart {
			noChange = 0
			continue
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ch:
			noChange = 0
		case <-time.After(grace):
			noChange++
			if noChange >= 3 {
				return nil, fmt.Errorf("rosen: elastic run failed with stable membership: %w", err)
			}
		}
	}
}

// runOneSegment places w workers, resets their state, optionally arms
// proactive migrators, and runs one segment. It returns (result, nil) on
// completion, (nil, errInterrupted) when membership changed mid-run, or
// (nil, err) on a real failure. The placement is torn down on every exit
// path, accumulating its stats.
func (m *Manager) runOneSegment(ctx context.Context, seg, w, minW, maxW int) (*Result, error) {
	el := m.elastic
	m.esMu.Lock()
	m.es.Segments++
	m.esMu.Unlock()
	if el.OnSegment != nil {
		el.OnSegment(seg, w)
	}
	if el.Logger != nil {
		el.Logger.Info("rosen: segment starting", "segment", seg, "workers", w)
	}
	defer m.teardown()
	if err := m.place(ctx, w); err != nil {
		return nil, err
	}
	// Deterministic restart: erase warm-start state live on every worker
	// AND in the checkpoint store, so mid-segment crash recovery cannot
	// resurrect a previous segment's state either.
	reset := workerResetState()
	for _, p := range m.Proxies() {
		if err := p.Seed(ctx, reset); err != nil {
			return nil, fmt.Errorf("rosen: reset worker state: %w", err)
		}
	}
	// Proactive migrators live exactly as long as the segment: a
	// Degrading host's worker moves its checkpointed state to a healthy
	// offer without interrupting the optimization.
	segCtx, cancelSeg := context.WithCancel(ctx)
	var migs []*ft.Migrator
	if el.Proactive {
		for _, p := range m.Proxies() {
			mopts := append([]ft.MigrateOption{ft.MigrateMembership(el.Membership)},
				el.MigrateOptions...)
			migs = append(migs, ft.NewMigrator(segCtx, p, mopts...))
		}
	}
	res, err := m.runSegment(ctx, w, func() bool {
		return m.width(minW, maxW) != w
	})
	cancelSeg()
	for _, mg := range migs {
		<-mg.Done()
	}
	m.esMu.Lock()
	for _, mg := range migs {
		m.es.Proactive += mg.Proactive()
		m.es.Migrations += mg.Migrations()
	}
	m.esMu.Unlock()
	return res, err
}

// teardown closes the current placement — draining each proxy's
// checkpoint pipeline, accumulating its stats and releasing any
// exclusive offer claims — so the next segment places fresh.
func (m *Manager) teardown() {
	if m.handles == nil {
		return
	}
	rel, _ := m.resolver.(OfferReleaser)
	m.esMu.Lock()
	defer m.esMu.Unlock()
	for i, h := range m.handles {
		switch hh := h.(type) {
		case proxyHandle:
			ref := hh.p.Ref()
			_ = hh.p.Close()
			s := hh.p.Stats()
			m.es.ProxyStats.Calls += s.Calls
			m.es.ProxyStats.Checkpoints += s.Checkpoints
			m.es.ProxyStats.CheckpointFailures += s.CheckpointFailures
			m.es.ProxyStats.Recoveries += s.Recoveries
			m.es.ProxyStats.Replays += s.Replays
			m.es.ProxyStats.CheckpointBytes += s.CheckpointBytes
			m.es.ProxyStats.DeltaCheckpoints += s.DeltaCheckpoints
			m.es.ProxyStats.AsyncCheckpoints += s.AsyncCheckpoints
			if rel != nil {
				rel.Release(ref)
			}
		case plainHandle:
			if rel != nil {
				rel.Release(hh.ref)
			}
		default:
			if rel != nil && i < len(m.refs) {
				rel.Release(m.refs[i])
			}
		}
	}
	m.handles, m.refs = nil, nil
}

// drainEvents empties any queued membership events without blocking, so
// a segment decision reads current state rather than stale backlog.
func drainEvents(ch <-chan cluster.Event) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}
