package rosen

import (
	"context"
	"time"

	"repro/internal/naming"
	"repro/internal/orb"
)

// Announcement is a worker's live registration: a leased offer under the
// worker group name plus the renewer keeping it alive. Stop withdraws the
// worker from the group (best-effort unbind, then let the lease lapse).
type Announcement struct {
	ns      naming.LeaseBinder
	name    naming.Name
	ref     orb.ObjectRef
	renewer *naming.LeaseRenewer
}

// Unbinder is the optional extra surface Stop uses for a prompt unbind;
// naming.Client and naming.HAClient both provide it.
type Unbinder interface {
	UnbindOffer(ctx context.Context, name naming.Name, ref orb.ObjectRef) error
}

// AnnounceWorker registers a worker reference as a leased offer under the
// RosenbrockWorker group and starts the lease renewer. With ttl <= 0 the
// offer is bound without a lease (never swept) and no renewer runs —
// callers that only want the old fire-and-forget registration get exactly
// that. ns may be a plain naming.Client or an HAClient, so announcements
// survive nameserver failover.
func AnnounceWorker(ctx context.Context, ns naming.LeaseBinder, ref orb.ObjectRef, host string, ttl time.Duration) (*Announcement, error) {
	name := naming.NewName(ServiceName)
	if err := ns.BindOfferLease(ctx, name, ref, host, ttl); err != nil {
		return nil, err
	}
	a := &Announcement{ns: ns, name: name, ref: ref}
	if ttl > 0 {
		a.renewer = naming.StartLeaseRenewer(ns, name, ref, host, ttl)
	}
	return a, nil
}

// Renewer exposes the underlying lease renewer (nil for leaseless
// announcements) for its counters.
func (a *Announcement) Renewer() *naming.LeaseRenewer { return a.renewer }

// Name returns the group name the worker is registered under.
func (a *Announcement) Name() naming.Name { return a.name }

// Stop halts renewal and, when ns supports it, unbinds the offer
// immediately rather than waiting out the lease.
func (a *Announcement) Stop(ctx context.Context) {
	if a.renewer != nil {
		a.renewer.Stop()
	}
	if u, ok := a.ns.(Unbinder); ok {
		_ = u.UnbindOffer(ctx, a.name, a.ref)
	}
}
