package rosen

import (
	"context"
	"testing"
	"time"

	"repro/internal/naming"
	"repro/internal/orb"
)

func TestAnnounceWorkerLeaseLifecycle(t *testing.T) {
	o := orb.New(orb.Options{Name: "announce-test"})
	t.Cleanup(o.Shutdown)
	ad, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := naming.NewRegistry()
	nsRef := ad.Activate(naming.DefaultKey, naming.NewServant(reg, naming.RoundRobinSelector()))
	ns := naming.NewClient(o, nsRef)
	sweeper := naming.NewSweeper(reg, naming.SweeperOptions{Period: 20 * time.Millisecond})
	sweeper.Start()
	t.Cleanup(sweeper.Stop)

	workerRef := ad.Activate("worker", NewWorker(nil))
	ctx := context.Background()
	ann, err := AnnounceWorker(ctx, ns, workerRef, "hostA", 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ann.Renewer() == nil {
		t.Fatal("leased announcement has no renewer")
	}

	// The renewer outlives several TTLs.
	time.Sleep(600 * time.Millisecond)
	offers, err := ns.ListOffers(ctx, ann.Name())
	if err != nil || len(offers) != 1 {
		t.Fatalf("offers = %+v, %v (lease lapsed despite renewer)", offers, err)
	}

	// Stop withdraws the worker promptly.
	ann.Stop(ctx)
	if offers, err := ns.ListOffers(ctx, ann.Name()); err == nil && len(offers) != 0 {
		t.Fatalf("offers after Stop = %+v", offers)
	}
}

func TestAnnounceWorkerWithoutLease(t *testing.T) {
	o := orb.New(orb.Options{Name: "announce-plain"})
	t.Cleanup(o.Shutdown)
	ad, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := naming.NewRegistry()
	nsRef := ad.Activate(naming.DefaultKey, naming.NewServant(reg, naming.RoundRobinSelector()))
	ns := naming.NewClient(o, nsRef)

	workerRef := ad.Activate("worker", NewWorker(nil))
	ann, err := AnnounceWorker(context.Background(), ns, workerRef, "hostA", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ann.Renewer() != nil {
		t.Fatal("leaseless announcement started a renewer")
	}
	leases, err := ns.ListLeases(context.Background(), ann.Name())
	if err != nil || len(leases) != 1 || leases[0].Offer.LeaseTTL != 0 {
		t.Fatalf("leases = %+v, %v", leases, err)
	}
}
