package rosen

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ft"
)

// elasticDeploy boots a plain-naming NOW and a membership view the test
// scripts directly (the integration soak feeds it from real detectors;
// unit tests drive it by hand for determinism).
func elasticDeploy(t *testing.T, hosts int) (*deployment, *cluster.Membership) {
	t.Helper()
	return deploy(t, hosts, false), cluster.NewMembership()
}

func elasticCfg() Config {
	return Config{
		N: 12, Workers: 3, // Workers is ignored in elastic mode
		WorkerIterations:  40,
		ManagerIterations: 5,
		Seed:              1,
		EvalCost:          1e-4,
	}
}

// TestElasticRunMatchesFixedPoolBitwise is the tentpole's determinism
// claim: a run that grows 3→5 workers and then shrinks 5→4 mid-flight
// converges to exactly the result of a fixed 4-worker run — bitwise.
func TestElasticRunMatchesFixedPoolBitwise(t *testing.T) {
	d, ms := elasticDeploy(t, 8)
	for _, h := range []string{"node01", "node02", "node03"} {
		ms.ReportAlive(h, "test")
	}

	store := ft.NewMemStore()
	cfg := elasticCfg()
	var curSeg int
	grew, shrank := false, false
	cfg.AfterRound = func(round int) {
		if !grew && round >= 2 {
			grew = true
			ms.ReportAlive("node04", "test")
			ms.ReportAlive("node05", "test")
			return
		}
		if grew && !shrank && curSeg >= 2 && round >= 2 {
			shrank = true
			ms.ReportDead("node05", "test")
		}
	}
	m := d.manager(cfg).
		WithFT(FTOptions{Store: store, Policy: ft.Policy{CheckpointEvery: 1}}).
		WithElastic(ElasticOptions{
			Membership: ms,
			MinWorkers: 2,
			OnSegment:  func(seg, w int) { curSeg = seg },
		})
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !grew || !shrank {
		t.Fatalf("script incomplete: grew=%v shrank=%v", grew, shrank)
	}
	es := m.ElasticStats()
	if es.Interrupts < 2 || es.Segments < 3 {
		t.Fatalf("elastic stats: %+v (want ≥2 interrupts over ≥3 segments)", es)
	}
	if es.FinalWorkers != 4 {
		t.Fatalf("final width = %d, want 4", es.FinalWorkers)
	}

	// Baseline: a fresh fixed-pool run at the final width.
	fixed := func() *Result {
		d2 := deploy(t, 8, false)
		cfg2 := elasticCfg()
		cfg2.Workers = 4
		m2 := d2.manager(cfg2).WithFT(FTOptions{
			Store: ft.NewMemStore(), Policy: ft.Policy{CheckpointEvery: 1},
		})
		r, err := m2.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()

	if res.F != fixed.F {
		t.Fatalf("F: elastic %v != fixed %v", res.F, fixed.F)
	}
	if res.Rounds != fixed.Rounds {
		t.Fatalf("rounds: elastic %d != fixed %d", res.Rounds, fixed.Rounds)
	}
	if len(res.Boundary) != len(fixed.Boundary) {
		t.Fatalf("boundary dims: %d vs %d", len(res.Boundary), len(fixed.Boundary))
	}
	for i := range res.Boundary {
		if res.Boundary[i] != fixed.Boundary[i] {
			t.Fatalf("boundary[%d]: %v != %v", i, res.Boundary[i], fixed.Boundary[i])
		}
	}
	for i := range res.X {
		if res.X[i] != fixed.X[i] {
			t.Fatalf("x[%d]: %v != %v", i, res.X[i], fixed.X[i])
		}
	}
}

func TestElasticUninterruptedMatchesFixed(t *testing.T) {
	// With stable membership the elastic run is exactly one segment and
	// must equal the fixed run at the same width.
	d, ms := elasticDeploy(t, 6)
	for _, h := range []string{"node01", "node02", "node03"} {
		ms.ReportAlive(h, "test")
	}
	m := d.manager(elasticCfg()).
		WithFT(FTOptions{Store: ft.NewMemStore(), Policy: ft.Policy{CheckpointEvery: 1}}).
		WithElastic(ElasticOptions{Membership: ms})
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	es := m.ElasticStats()
	if es.Segments != 1 || es.Interrupts != 0 || es.FinalWorkers != 3 {
		t.Fatalf("stats: %+v", es)
	}

	d2 := deploy(t, 6, false)
	cfg := elasticCfg()
	cfg.Workers = 3
	fixed, err := d2.manager(cfg).WithFT(FTOptions{
		Store: ft.NewMemStore(), Policy: ft.Policy{CheckpointEvery: 1},
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.F != fixed.F || res.Rounds != fixed.Rounds {
		t.Fatalf("elastic %v/%d != fixed %v/%d", res.F, res.Rounds, fixed.F, fixed.Rounds)
	}
}

func TestElasticParksUntilCapacity(t *testing.T) {
	// Membership starts empty; the run parks, then capacity arrives and
	// it completes.
	d, ms := elasticDeploy(t, 6)
	m := d.manager(elasticCfg()).
		WithFT(FTOptions{Store: ft.NewMemStore(), Policy: ft.Policy{CheckpointEvery: 1}}).
		WithElastic(ElasticOptions{Membership: ms, MinWorkers: 2})
	go func() {
		time.Sleep(50 * time.Millisecond)
		ms.ReportAlive("node01", "test")
		ms.ReportAlive("node02", "test")
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := m.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.ElasticStats().FinalWorkers != 2 {
		t.Fatalf("final width = %d", m.ElasticStats().FinalWorkers)
	}
	if res.F < 0 {
		t.Fatalf("F = %v", res.F)
	}
}

func TestElasticRequiresFTAndMembership(t *testing.T) {
	d, ms := elasticDeploy(t, 4)
	if _, err := d.manager(elasticCfg()).
		WithElastic(ElasticOptions{Membership: ms}).
		Run(context.Background()); err == nil {
		t.Fatal("elastic without FT accepted")
	}
	if _, err := d.manager(elasticCfg()).
		WithFT(FTOptions{Store: ft.NewMemStore(), Policy: ft.Policy{CheckpointEvery: 1}}).
		WithElastic(ElasticOptions{}).
		Run(context.Background()); err == nil {
		t.Fatal("elastic without membership accepted")
	}
	cfg := elasticCfg()
	cfg.Replication = 2
	if _, err := d.manager(cfg).
		WithFT(FTOptions{Store: ft.NewMemStore(), Policy: ft.Policy{CheckpointEvery: 1}}).
		WithElastic(ElasticOptions{Membership: ms}).
		Run(context.Background()); err == nil {
		t.Fatal("elastic with replication accepted")
	}
}
