package rosen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cdr"
	"repro/internal/cluster"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/orb"
)

// requester abstracts "issue an asynchronous solve call": the plain DII
// request and the fault-tolerant request proxy both satisfy it, so the
// manager code is identical with and without fault tolerance — the
// paper's "use a proxy class instead of the stub class" one-line change.
type requester interface {
	Args() *cdr.Encoder
	Send()
	GetResponse(func(*cdr.Decoder) error) error
}

// workerHandle issues solve requests against one worker.
type workerHandle interface {
	newRequest(ctx context.Context) requester
}

type plainHandle struct {
	orb *orb.ORB
	ref orb.ObjectRef
}

func (h plainHandle) newRequest(ctx context.Context) requester {
	return h.orb.CreateRequest(ctx, h.ref, OpSolve)
}

type proxyHandle struct{ p *ft.Proxy }

func (h proxyHandle) newRequest(ctx context.Context) requester { return h.p.NewRequest(ctx, OpSolve) }

type replicaHandle struct{ g *ft.ReplicaGroup }

func (h replicaHandle) newRequest(ctx context.Context) requester {
	return h.g.NewRequest(ctx, OpSolve)
}

// Config parameterizes a distributed decomposed-Rosenbrock run.
type Config struct {
	// N is the global problem dimension (30 or 100 in the paper).
	N int
	// Workers is the number of worker subproblems (3 or 7).
	Workers int
	// WorkerIterations is each worker's Complex Box budget per solve —
	// the paper's worker stopping criterion (Table 1 sweeps it).
	WorkerIterations int
	// ManagerIterations is the manager's Complex Box budget (the number
	// of boundary proposals, each costing one parallel worker round).
	ManagerIterations int
	// Seed drives both manager and worker randomness.
	Seed int64
	// Lo and Hi are the uniform global box constraints (the classic
	// Rosenbrock box is [-2.048, 2.048]).
	Lo, Hi float64
	// EvalCost is the virtual CPU seconds charged per worker objective
	// evaluation per dimension (0 for real-time mode).
	EvalCost float64
	// Replication, when > 1, uses active replication instead of
	// checkpoint/restart: each worker becomes a replica group of that
	// size, every solve is multicast, and no checkpoints are taken — the
	// alternative fault-tolerance style (Piranha/IGOR) the paper argues
	// wastes computational resources. Mutually exclusive with WithFT.
	Replication int
	// AfterRound, when set, runs after each completed manager round with
	// the 1-based round number. Experiments use it for deterministic
	// mid-run fault injection.
	AfterRound func(round int)
}

func (c Config) withDefaults() Config {
	if c.WorkerIterations == 0 {
		c.WorkerIterations = 200
	}
	if c.ManagerIterations == 0 {
		c.ManagerIterations = 10
	}
	if c.Lo == 0 && c.Hi == 0 {
		c.Lo, c.Hi = -2.048, 2.048
	}
	return c
}

// Result reports a distributed run.
type Result struct {
	// F is the best combined objective value found.
	F float64
	// Boundary is the best boundary-variable vector.
	Boundary []float64
	// X is the assembled full solution vector.
	X []float64
	// Rounds is the number of manager iterations (parallel worker
	// rounds) executed.
	Rounds int
	// WorkerCalls counts solve invocations issued.
	WorkerCalls int64
	// Evaluations sums worker objective evaluations.
	Evaluations int64
	// Runtime is the elapsed time: virtual seconds when the manager runs
	// on a simulated host, wall-clock seconds otherwise.
	Runtime float64
	// SequentialSeconds is the total virtual CPU work performed by all
	// workers (what a single reference workstation would have needed).
	// Zero in real-time mode (EvalCost 0).
	SequentialSeconds float64
}

// Speedup is the parallel speedup: sequential work over elapsed runtime
// (0 when either quantity is unknown).
func (r *Result) Speedup() float64 {
	if r.Runtime <= 0 || r.SequentialSeconds <= 0 {
		return 0
	}
	return r.SequentialSeconds / r.Runtime
}

// FTOptions enable fault-tolerant worker proxies.
type FTOptions struct {
	// Store receives worker checkpoints.
	Store ft.Store
	// Policy tunes the proxies (CheckpointEvery=1 reproduces Table 1).
	Policy ft.Policy
	// Unbinder removes dead offers during recovery (optional).
	Unbinder ft.Unbinder
}

// Manager drives the bilevel optimization: its Complex Box proposes
// boundary vectors; each proposal is evaluated by dispatching subproblem
// solves to all workers in parallel (DII deferred requests) and summing
// their optima.
type Manager struct {
	orb      *orb.ORB
	resolver ft.Resolver
	cfg      Config
	// clockHost, when set, measures runtime on its virtual clock.
	clockHost *cluster.Host
	ftOpts    *FTOptions
	// elastic, when set, switches Run to the segmented re-decomposition
	// loop driven by the cluster membership view (see elastic.go).
	elastic *ElasticOptions

	handles []workerHandle
	refs    []orb.ObjectRef

	esMu sync.Mutex
	es   ElasticStats
}

// NewManager builds a manager that locates workers via resolver (the
// naming service) and calls them through o.
func NewManager(o *orb.ORB, resolver ft.Resolver, cfg Config) *Manager {
	return &Manager{orb: o, resolver: resolver, cfg: cfg.withDefaults()}
}

// OnHost makes the manager measure runtime on host's virtual clock.
func (m *Manager) OnHost(h *cluster.Host) *Manager {
	m.clockHost = h
	return m
}

// WithFT routes all worker calls through fault-tolerant proxies.
func (m *Manager) WithFT(opts FTOptions) *Manager {
	m.ftOpts = &opts
	return m
}

// WorkerRefs returns the references resolved during placement (valid
// after Run or Place).
func (m *Manager) WorkerRefs() []orb.ObjectRef { return m.refs }

// ProxyStats sums the fault-tolerance counters over all worker proxies.
// Zero unless the manager runs WithFT; valid after Place. Chaos tests use
// it to assert that recovery fired and that replayed work stays bounded.
func (m *Manager) ProxyStats() ft.Stats {
	var total ft.Stats
	for _, h := range m.handles {
		ph, ok := h.(proxyHandle)
		if !ok {
			continue
		}
		s := ph.p.Stats()
		total.Calls += s.Calls
		total.Checkpoints += s.Checkpoints
		total.CheckpointFailures += s.CheckpointFailures
		total.Recoveries += s.Recoveries
		total.Replays += s.Replays
		total.CheckpointBytes += s.CheckpointBytes
		total.DeltaCheckpoints += s.DeltaCheckpoints
		total.AsyncCheckpoints += s.AsyncCheckpoints
	}
	return total
}

// Place resolves one worker reference per subproblem through the naming
// service. With the Winner-enhanced service each resolve lands on the
// currently best host; with the plain service placement ignores load —
// this is the entire difference between the paper's two Figure 3 curves.
func (m *Manager) Place(ctx context.Context) error {
	return m.place(ctx, m.cfg.Workers)
}

// place resolves workers many worker references; Place and the elastic
// segment loop (which re-places at each new width) both go through it.
func (m *Manager) place(ctx context.Context, workers int) error {
	if m.handles != nil {
		return nil
	}
	name := naming.NewName(ServiceName)
	for j := 0; j < workers; j++ {
		if m.cfg.Replication > 1 {
			// Active replication: resolve one reference per replica (the
			// naming service spreads them over hosts) and multicast.
			refs := make([]orb.ObjectRef, 0, m.cfg.Replication)
			for r := 0; r < m.cfg.Replication; r++ {
				ref, err := m.resolver.Resolve(ctx, name)
				if err != nil {
					return fmt.Errorf("rosen: place worker %d replica %d: %w", j, r, err)
				}
				refs = append(refs, ref)
			}
			g, err := ft.NewReplicaGroupFromRefs(m.orb, name, refs)
			if err != nil {
				return fmt.Errorf("rosen: place worker %d: %w", j, err)
			}
			m.handles = append(m.handles, replicaHandle{g})
			m.refs = append(m.refs, refs[0])
			continue
		}
		if m.ftOpts != nil {
			proxyName := naming.NewName(ServiceName, fmt.Sprintf("w%d", j))
			// Each worker needs its own checkpoint identity; the group
			// offers live under ServiceName, so resolve through it but
			// checkpoint under the per-worker name.
			p, err := ft.NewProxy(ctx, m.orb, name, m.resolver, keyedStore{m.ftOpts.Store, proxyName.String()},
				m.ftOpts.Policy, proxyOptions(m.ftOpts)...)
			if err != nil {
				return fmt.Errorf("rosen: place worker %d: %w", j, err)
			}
			m.handles = append(m.handles, proxyHandle{p})
			m.refs = append(m.refs, p.Ref())
			continue
		}
		ref, err := m.resolver.Resolve(ctx, name)
		if err != nil {
			return fmt.Errorf("rosen: place worker %d: %w", j, err)
		}
		m.handles = append(m.handles, plainHandle{orb: m.orb, ref: ref})
		m.refs = append(m.refs, ref)
	}
	// Warm the transport to every placed worker before the first round,
	// so round 1 does not pay the TCP dials serially.
	addrs := make([]string, 0, len(m.refs))
	for _, ref := range m.refs {
		addrs = append(addrs, ref.Addr)
	}
	m.orb.Prewarm(ctx, addrs...)
	return nil
}

// Close releases per-worker resources: each fault-tolerant proxy's async
// checkpoint pipeline is drained and stopped. The manager stays usable —
// later checkpoints are simply stored synchronously.
func (m *Manager) Close() {
	for _, h := range m.handles {
		if ph, ok := h.(proxyHandle); ok {
			_ = ph.p.Close()
		}
	}
}

func proxyOptions(o *FTOptions) []ft.ProxyOption {
	var opts []ft.ProxyOption
	if o.Unbinder != nil {
		opts = append(opts, ft.WithUnbinder(o.Unbinder))
	}
	return opts
}

// keyedStore namespaces one proxy's checkpoints inside a shared store, so
// several proxies resolving the same group name keep distinct state.
type keyedStore struct {
	inner ft.Store
	key   string
}

func (s keyedStore) Put(ctx context.Context, _ string, cp ft.Checkpoint) error {
	return s.inner.Put(ctx, s.key, cp)
}
func (s keyedStore) Get(ctx context.Context, _ string) (ft.Checkpoint, error) {
	return s.inner.Get(ctx, s.key)
}
func (s keyedStore) Delete(ctx context.Context, _ string) error { return s.inner.Delete(ctx, s.key) }
func (s keyedStore) Keys(ctx context.Context) ([]string, error) { return s.inner.Keys(ctx) }

// Run executes the full bilevel optimization and reports the result.
// Cancelling ctx stops the manager loop between evaluations and aborts
// the in-flight worker solves (the workers observe the propagated
// cancellation and stop iterating).
func (m *Manager) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if m.elastic != nil {
		return m.runElastic(ctx)
	}
	if err := m.Place(ctx); err != nil {
		return nil, err
	}
	// Land every pipelined checkpoint before Run returns, so callers
	// reading the store (or ProxyStats) observe the final epochs.
	defer m.Close()
	return m.runSegment(ctx, m.cfg.Workers, nil)
}

// runSegment executes one full bilevel optimization at the given worker
// count against the current placement. In fixed mode it is the whole run;
// in elastic mode each membership epoch runs one segment, and interrupted
// (when non-nil) is polled between manager evaluations — a true return
// aborts the segment with errInterrupted and its partial result is
// discarded, keeping segment results equal to fresh fixed-pool runs.
func (m *Manager) runSegment(ctx context.Context, workers int, interrupted func() bool) (*Result, error) {
	d, err := opt.NewDecomposition(m.cfg.N, workers)
	if err != nil {
		return nil, err
	}
	global := opt.UniformBounds(m.cfg.N, m.cfg.Lo, m.cfg.Hi)
	mb, err := d.ManagerBounds(global)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	workerDims := d.WorkerDims()
	startWall := time.Now()
	var startVirtual float64
	if m.clockHost != nil {
		startVirtual = m.clockHost.Clock().Now()
	}

	var solveErr error
	round := 0
	bestF := 0.0
	var bestBoundary []float64
	var bestBlocks [][]float64
	haveBest := false

	managerObj := func(boundary []float64) float64 {
		if solveErr != nil {
			return 0
		}
		round++
		// Each manager round — one parallel fan-out to all workers — is a
		// span, so rosenbench -trace shows rounds with their worker calls.
		rctx, rspan := obs.StartSpan(ctx, "rosen.round",
			obs.Int("round", int64(round)), obs.Int("workers", int64(workers)))
		reqs := make([]requester, workers)
		for j := 0; j < workers; j++ {
			sr := SolveRequest{
				N:             int32(m.cfg.N),
				Workers:       int32(workers),
				Index:         int32(j),
				Boundary:      boundary,
				MaxIterations: int32(m.cfg.WorkerIterations),
				Seed:          m.cfg.Seed + int64(j) + int64(round)*1000,
				Lo:            m.cfg.Lo,
				Hi:            m.cfg.Hi,
				EvalCost:      m.cfg.EvalCost,
			}
			req := m.handles[j].newRequest(rctx)
			sr.MarshalCDR(req.Args())
			req.Send()
			reqs[j] = req
		}
		total := 0.0
		blocks := make([][]float64, workers)
		for j, req := range reqs {
			var reply SolveReply
			if err := req.GetResponse(func(dd *cdr.Decoder) error { return reply.UnmarshalCDR(dd) }); err != nil {
				if solveErr == nil {
					solveErr = fmt.Errorf("rosen: worker %d solve: %w", j, err)
				}
				continue
			}
			total += reply.Value
			blocks[j] = reply.Block
			res.WorkerCalls++
			res.Evaluations += reply.Evaluations
			res.SequentialSeconds += float64(reply.Evaluations) * m.cfg.EvalCost * float64(workerDims[j])
		}
		if solveErr == nil && (!haveBest || total < bestF) {
			haveBest = true
			bestF = total
			bestBoundary = append([]float64(nil), boundary...)
			bestBlocks = blocks
		}
		rspan.EndErr(solveErr)
		if m.cfg.AfterRound != nil {
			m.cfg.AfterRound(round)
		}
		return total
	}

	if _, err := opt.MinimizeComplexBox(managerObj, mb, opt.ComplexBoxOptions{
		MaxIterations: m.cfg.ManagerIterations,
		Seed:          m.cfg.Seed,
		Stop: func() bool {
			return ctx.Err() != nil || solveErr != nil ||
				(interrupted != nil && interrupted())
		},
	}); err != nil {
		return nil, err
	}
	if solveErr != nil {
		return nil, solveErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if interrupted != nil && interrupted() {
		return nil, errInterrupted
	}

	res.Rounds = round
	res.F = bestF
	res.Boundary = bestBoundary
	if bestBlocks != nil {
		if x, err := d.Assemble(bestBoundary, bestBlocks); err == nil {
			res.X = x
		}
	}
	if m.clockHost != nil {
		res.Runtime = m.clockHost.Clock().Now() - startVirtual
	} else {
		res.Runtime = time.Since(startWall).Seconds()
	}
	return res, nil
}
