// Package rosen is the paper's evaluation application: parallel
// minimisation of a decomposed Rosenbrock function with a manager process
// and N worker services communicating over the ORB. Workers are located
// through the naming service (plain or Winner-enhanced — the Figure 3
// comparison) and can be called through fault-tolerant proxies (the
// Table 1 comparison).
package rosen

import (
	"repro/internal/cdr"
)

// WorkerTypeID is the repository id of the worker interface.
const WorkerTypeID = "IDL:repro/Rosen/Worker:1.0"

// ServiceName is the naming-service group name workers register under.
const ServiceName = "RosenbrockWorker"

// OpSolve is the worker's single business operation.
const OpSolve = "solve"

// SolveRequest is the manager→worker subproblem description.
type SolveRequest struct {
	// N and Workers identify the global decomposition.
	N, Workers int32
	// Index is this worker's block index.
	Index int32
	// Boundary is the manager's current boundary-variable vector.
	Boundary []float64
	// MaxIterations is the worker's Complex Box iteration budget — the
	// paper's stopping criterion, varied in Table 1.
	MaxIterations int32
	// Seed makes the worker's run reproducible.
	Seed int64
	// Lo and Hi are the uniform global box constraints.
	Lo, Hi float64
	// EvalCost is the virtual CPU seconds charged per objective
	// evaluation (0 in real-time mode).
	EvalCost float64
}

// MarshalCDR encodes the request.
func (r *SolveRequest) MarshalCDR(e *cdr.Encoder) {
	e.PutInt32(r.N)
	e.PutInt32(r.Workers)
	e.PutInt32(r.Index)
	e.PutFloat64Seq(r.Boundary)
	e.PutInt32(r.MaxIterations)
	e.PutInt64(r.Seed)
	e.PutFloat64(r.Lo)
	e.PutFloat64(r.Hi)
	e.PutFloat64(r.EvalCost)
}

// UnmarshalCDR decodes the request.
func (r *SolveRequest) UnmarshalCDR(d *cdr.Decoder) error {
	r.N = d.GetInt32()
	r.Workers = d.GetInt32()
	r.Index = d.GetInt32()
	r.Boundary = d.GetFloat64Seq()
	r.MaxIterations = d.GetInt32()
	r.Seed = d.GetInt64()
	r.Lo = d.GetFloat64()
	r.Hi = d.GetFloat64()
	r.EvalCost = d.GetFloat64()
	return d.Err()
}

// SolveReply is the worker→manager result.
type SolveReply struct {
	// Block is the optimized block-variable vector.
	Block []float64
	// Value is the subproblem objective at Block.
	Value float64
	// Evaluations counts objective evaluations performed.
	Evaluations int64
}

// MarshalCDR encodes the reply.
func (r *SolveReply) MarshalCDR(e *cdr.Encoder) {
	e.PutFloat64Seq(r.Block)
	e.PutFloat64(r.Value)
	e.PutInt64(r.Evaluations)
}

// UnmarshalCDR decodes the reply.
func (r *SolveReply) UnmarshalCDR(d *cdr.Decoder) error {
	r.Block = d.GetFloat64Seq()
	r.Value = d.GetFloat64()
	r.Evaluations = d.GetInt64()
	return d.Err()
}

// ExBadSolve is raised for malformed solve requests.
const ExBadSolve = "IDL:repro/Rosen/BadSolve:1.0"
