package rosen

import (
	"context"
	"math"
	"testing"

	"repro/internal/cdr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/orb"
)

// deployment is a full simulated NOW running worker services on every
// host (except the service host, mirroring the paper's setup where the
// manager and services need capacity too).
type deployment struct {
	env     *core.Environment
	nodes   []*cluster.Node
	workers []*Worker
	mgrNode *cluster.Node
}

// deploy boots an environment with `hosts` workstations, a worker servant
// on each host except host 0 (which runs naming + Winner + the manager),
// and returns the fixture.
func deploy(t *testing.T, hosts int, useWinner bool) *deployment {
	t.Helper()
	env, err := core.Start(core.EnvironmentOptions{Hosts: hosts, UseWinner: useWinner})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	d := &deployment{env: env}

	name := naming.NewName(ServiceName)
	for _, h := range env.Cluster.Hosts()[1:] {
		node, err := env.NewNode(h.Name())
		if err != nil {
			t.Fatal(err)
		}
		w := NewWorker(h)
		ref := node.Adapter.Activate("worker", ft.Wrap(w))
		if err := env.Naming.BindOffer(context.Background(), name, ref, h.Name()); err != nil {
			t.Fatal(err)
		}
		d.nodes = append(d.nodes, node)
		d.workers = append(d.workers, w)
	}

	mgrNode, err := env.NewNode(env.Cluster.Hosts()[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	d.mgrNode = mgrNode
	env.SampleAll()
	return d
}

func (d *deployment) manager(cfg Config) *Manager {
	return NewManager(d.mgrNode.ORB, d.env.NamingClientFor(d.mgrNode), cfg).
		OnHost(d.mgrNode.Host)
}

func smallCfg() Config {
	return Config{
		N: 12, Workers: 3,
		WorkerIterations:  60,
		ManagerIterations: 6,
		Seed:              1,
		EvalCost:          1e-4,
	}
}

func TestDistributedSolveProducesReasonableOptimum(t *testing.T) {
	d := deploy(t, 5, true)
	res, err := d.manager(smallCfg()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.F < 0 {
		t.Fatalf("negative objective %v", res.F)
	}
	if res.Rounds == 0 || res.WorkerCalls == 0 || res.Evaluations == 0 {
		t.Fatalf("counters: %+v", res)
	}
	if len(res.X) != 12 {
		t.Fatalf("solution dim = %d", len(res.X))
	}
	// The assembled solution's true Rosenbrock value must match the
	// reported combined optimum.
	// (Worker values sum exactly to the global objective.)
	if got := rosenbrockAt(res.X); math.Abs(got-res.F) > 1e-6*(1+math.Abs(res.F)) {
		t.Fatalf("assembled value %v != reported %v", got, res.F)
	}
	if res.Runtime <= 0 {
		t.Fatalf("runtime = %v", res.Runtime)
	}
	// Three workers computing in parallel must achieve real speedup over
	// the sequential work they performed.
	if sp := res.Speedup(); sp <= 1.2 || sp > 3.5 {
		t.Fatalf("speedup = %v, want in (1.2, 3.5] for 3 workers", sp)
	}
}

func rosenbrockAt(x []float64) float64 {
	var sum float64
	for i := 0; i+1 < len(x); i++ {
		a, b := x[i], x[i+1]
		d := b - a*a
		e := 1 - a
		sum += 100*d*d + e*e
	}
	return sum
}

func TestDistributedSolveDeterministicAcrossNamingModes(t *testing.T) {
	// The numerical trajectory must be identical under plain and Winner
	// naming — only placement (and therefore virtual runtime) differs.
	resPlain := func() *Result {
		d := deploy(t, 5, false)
		r, err := d.manager(smallCfg()).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	resWinner := func() *Result {
		d := deploy(t, 5, true)
		r, err := d.manager(smallCfg()).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	if resPlain.F != resWinner.F || resPlain.Evaluations != resWinner.Evaluations {
		t.Fatalf("numerics diverged: plain %+v winner %+v", resPlain, resWinner)
	}
}

func TestWinnerPlacementAvoidsLoadedHosts(t *testing.T) {
	// 5 hosts, host 1 and 2 loaded (hosts are node00..node04; node00 is
	// the service/manager host). Workers live on node01..node04. With 3
	// workers and 2 loaded worker hosts, Winner must place all workers
	// on unloaded hosts... only 2 unloaded worker hosts exist, so at
	// least one worker lands on a loaded host; with 2 workers all fit.
	d := deploy(t, 5, true)
	d.env.Cluster.Host("node01").SetBackground(1)
	d.env.Cluster.Host("node02").SetBackground(1)
	d.env.SampleAll()

	cfg := smallCfg()
	cfg.N = 9
	cfg.Workers = 2
	m := d.manager(cfg)
	if err := m.Place(context.Background()); err != nil {
		t.Fatal(err)
	}
	offers, err := d.env.Naming.ListOffers(context.Background(), naming.NewName(ServiceName))
	if err != nil {
		t.Fatal(err)
	}
	addrToHost := map[string]string{}
	for _, o := range offers {
		addrToHost[o.Ref.Addr] = o.Host
	}
	for _, ref := range m.WorkerRefs() {
		host := addrToHost[ref.Addr]
		if host == "node01" || host == "node02" {
			t.Fatalf("worker placed on loaded host %s", host)
		}
	}
}

func TestPlainPlacementIgnoresLoad(t *testing.T) {
	d := deploy(t, 5, false)
	d.env.Cluster.Host("node01").SetBackground(1)
	d.env.SampleAll()

	cfg := smallCfg()
	cfg.N = 9
	cfg.Workers = 2
	m := d.manager(cfg)
	if err := m.Place(context.Background()); err != nil {
		t.Fatal(err)
	}
	offers, _ := d.env.Naming.ListOffers(context.Background(), naming.NewName(ServiceName))
	addrToHost := map[string]string{}
	for _, o := range offers {
		addrToHost[o.Ref.Addr] = o.Host
	}
	// Round-robin from the head: first two offers are node01, node02 —
	// the loaded node01 is used despite its load.
	if host := addrToHost[m.WorkerRefs()[0].Addr]; host != "node01" {
		t.Fatalf("plain placement head = %s, want node01", host)
	}
}

func TestLoadedHostsSlowTheRun(t *testing.T) {
	run := func(loaded int) float64 {
		d := deploy(t, 4, false) // 3 worker hosts for 3 workers
		if loaded > 0 {
			// Load worker hosts (node01...).
			for i := 0; i < loaded; i++ {
				d.env.Cluster.Hosts()[1+i].SetBackground(1)
			}
		}
		d.env.SampleAll()
		res, err := d.manager(smallCfg()).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.Runtime
	}
	fast := run(0)
	slow := run(3)
	if !(slow > fast*1.5) {
		t.Fatalf("background load had no effect: %v vs %v", fast, slow)
	}
}

func TestFTWorkersSurviveCrashMidRun(t *testing.T) {
	d := deploy(t, 5, true)
	store := ft.NewMemStore()
	cfg := smallCfg()
	cfg.ManagerIterations = 4
	m := d.manager(cfg).WithFT(FTOptions{
		Store:    store,
		Policy:   ft.Policy{CheckpointEvery: 1, MaxRecoveries: 4},
		Unbinder: d.env.NamingClientFor(d.mgrNode),
	})
	if err := m.Place(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Kill the node hosting the first placed worker.
	victim := m.WorkerRefs()[0].Addr
	killed := false
	for _, n := range d.nodes {
		if n.Adapter.Addr() == victim {
			n.Fail()
			killed = true
		}
	}
	if !killed {
		t.Fatalf("no node matches %s", victim)
	}
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.F < 0 || res.WorkerCalls == 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestFTRunMatchesPlainNumerics(t *testing.T) {
	// With no failures, the FT run computes the same result as the plain
	// run (proxies are transparent); only runtime differs.
	plain := func() *Result {
		d := deploy(t, 5, true)
		r, err := d.manager(smallCfg()).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	ftRes := func() *Result {
		d := deploy(t, 5, true)
		m := d.manager(smallCfg()).WithFT(FTOptions{
			Store:  ft.NewMemStore(),
			Policy: ft.Policy{CheckpointEvery: 1},
		})
		r, err := m.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()
	if plain.F != ftRes.F {
		t.Fatalf("FT changed numerics: %v vs %v", plain.F, ftRes.F)
	}
}

func TestFTCrashInjectedMidRun(t *testing.T) {
	// The crash happens *between* manager rounds via the AfterRound hook:
	// a deterministic mid-run fault. The FT proxies must recover and the
	// run must complete.
	d := deploy(t, 6, true)
	store := ft.NewMemStore()
	cfg := smallCfg()
	cfg.ManagerIterations = 5
	killed := false
	cfg.AfterRound = func(round int) {
		if round == 2 && !killed {
			killed = true
			d.nodes[0].Fail()
			d.nodes[1].Fail()
		}
	}
	m := d.manager(cfg).WithFT(FTOptions{
		Store:    store,
		Policy:   ft.Policy{CheckpointEvery: 1, MaxRecoveries: 5},
		Unbinder: d.env.NamingClientFor(d.mgrNode),
	})
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("fault never injected")
	}
	if res.Rounds < 3 || res.WorkerCalls == 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestActiveReplicationRun(t *testing.T) {
	d := deploy(t, 7, true)
	cfg := smallCfg()
	cfg.Replication = 2
	m := d.manager(cfg)
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.F < 0 || res.WorkerCalls == 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestActiveReplicationSurvivesCrashWithoutCheckpoints(t *testing.T) {
	d := deploy(t, 7, true)
	cfg := smallCfg()
	cfg.Replication = 2
	m := d.manager(cfg)
	if err := m.Place(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Kill the node hosting the first worker's primary replica.
	victim := m.WorkerRefs()[0].Addr
	for _, n := range d.nodes {
		if n.Adapter.Addr() == victim {
			n.Fail()
		}
	}
	res, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkerCalls == 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestActiveReplicationSlowerThanSingle(t *testing.T) {
	// With 3 workers on only 3 worker hosts, replication factor 2 forces
	// colocated replicas that time-share their hosts: the run must be
	// substantially slower than the unreplicated one.
	run := func(replication int) float64 {
		d := deploy(t, 4, true)
		cfg := smallCfg()
		cfg.Replication = replication
		res, err := d.manager(cfg).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.Runtime
	}
	single := run(0)
	replicated := run(2)
	if !(replicated > single*1.4) {
		t.Fatalf("replication cost invisible: %v vs %v", replicated, single)
	}
}

func TestWorkerSolveDirect(t *testing.T) {
	// Exercise the servant without the manager.
	o := orb.New(orb.Options{})
	t.Cleanup(o.Shutdown)
	ad, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(nil) // real-time mode
	ref := ad.Activate("w", ft.Wrap(w))

	req := SolveRequest{N: 10, Workers: 2, Index: 0, Boundary: []float64{0.5},
		MaxIterations: 100, Seed: 3, Lo: -2, Hi: 2}
	var reply SolveReply
	err = o.Call(context.Background(), ref, OpSolve,
		func(e *cdr.Encoder) { req.MarshalCDR(e) },
		func(dd *cdr.Decoder) error { return reply.UnmarshalCDR(dd) })
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Block) != 5 || reply.Evaluations == 0 {
		t.Fatalf("reply: %+v", reply)
	}
	if w.Solves() != 1 {
		t.Fatalf("solves = %d", w.Solves())
	}
}

func TestWorkerRejectsBadRequests(t *testing.T) {
	o := orb.New(orb.Options{})
	t.Cleanup(o.Shutdown)
	ad, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ref := ad.Activate("w", ft.Wrap(NewWorker(nil)))

	cases := []SolveRequest{
		{N: 2, Workers: 5, Index: 0, MaxIterations: 10, Lo: -1, Hi: 1},                             // impossible decomposition
		{N: 10, Workers: 2, Index: 7, Boundary: []float64{0}, MaxIterations: 10, Lo: -1, Hi: 1},    // index out of range
		{N: 10, Workers: 2, Index: 0, Boundary: []float64{0}, MaxIterations: 10, Lo: 1, Hi: -1},    // empty bounds
		{N: 10, Workers: 2, Index: 0, Boundary: []float64{0, 0}, MaxIterations: 10, Lo: -1, Hi: 1}, // wrong boundary dim
	}
	for i, req := range cases {
		err := o.Call(context.Background(), ref, OpSolve,
			func(e *cdr.Encoder) { req.MarshalCDR(e) }, nil)
		if !orb.IsUserException(err, ExBadSolve) {
			t.Fatalf("case %d: err = %v", i, err)
		}
	}
	if err := o.Call(context.Background(), ref, "unknown_op", nil, nil); !orb.IsSystemException(err, orb.ExBadOperation) {
		t.Fatalf("err = %v", err)
	}
}

func TestWorkerCheckpointRestoreRoundTrip(t *testing.T) {
	w := NewWorker(nil)
	w.warm = []float64{1, 2, 3}
	w.warmF = 0.25
	w.solves = 7
	data, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWorker(nil)
	if err := w2.Restore(data); err != nil {
		t.Fatal(err)
	}
	if w2.warmF != 0.25 || w2.solves != 7 || len(w2.warm) != 3 || w2.warm[2] != 3 {
		t.Fatalf("restored: %+v", w2)
	}
	if err := w2.Restore([]byte{1}); err == nil {
		t.Fatal("garbage restore accepted")
	}
}

func TestWorkerWarmStartImproves(t *testing.T) {
	o := orb.New(orb.Options{})
	t.Cleanup(o.Shutdown)
	ad, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(nil)
	ref := ad.Activate("w", ft.Wrap(w))

	solve := func(seed int64) float64 {
		req := SolveRequest{N: 10, Workers: 2, Index: 0, Boundary: []float64{1},
			MaxIterations: 150, Seed: seed, Lo: -2, Hi: 2}
		var reply SolveReply
		if err := o.Call(context.Background(), ref, OpSolve,
			func(e *cdr.Encoder) { req.MarshalCDR(e) },
			func(dd *cdr.Decoder) error { return reply.UnmarshalCDR(dd) }); err != nil {
			t.Fatal(err)
		}
		return reply.Value
	}
	first := solve(1)
	second := solve(2) // warm-started from the first solution
	if second > first+1e-9 {
		t.Fatalf("warm start regressed: %v -> %v", first, second)
	}
}
