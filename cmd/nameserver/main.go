// Command nameserver runs the naming service as a standalone daemon.
//
// By default it serves the plain (round-robin) service; pass -winner with
// the stringified reference of a Winner system manager to serve the
// paper's load-distribution naming service instead.
//
//	nameserver -addr 127.0.0.1:9001
//	nameserver -addr 127.0.0.1:9001 -winner "$(cat winner.ref)"
//
// The service's stringified object reference (SIOR) is printed on stdout
// and optionally written to -ref-file for other processes to pick up.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/winner"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9001", "listen address")
	winnerRef := flag.String("winner", "", "SIOR of the Winner system manager (enables load distribution)")
	refFile := flag.String("ref-file", "", "write the service SIOR to this file")
	store := flag.String("store", "", "persist bindings to this snapshot file")
	savePeriod := flag.Duration("save-period", 10*time.Second, "snapshot save interval (with -store)")
	obsAddr := flag.String("obs", "", "serve /metrics and /debug/traces on this address (empty: disabled)")
	flag.Parse()
	slog.SetDefault(obs.NewLogger(os.Stderr, "nameserver", slog.LevelInfo))

	o := orb.New(orb.Options{Name: "nameserver"})
	defer o.Shutdown()
	ad, err := o.NewAdapter(*addr)
	if err != nil {
		log.Fatalf("nameserver: %v", err)
	}

	reg := naming.NewRegistry()
	if *store != "" {
		if err := reg.LoadFile(*store); err != nil {
			log.Fatalf("nameserver: %v", err)
		}
		log.Printf("nameserver: persisting bindings to %s", *store)
	}
	var servant *naming.Servant
	if *winnerRef != "" {
		ref, err := orb.RefFromString(*winnerRef)
		if err != nil {
			log.Fatalf("nameserver: bad -winner reference: %v", err)
		}
		servant = core.NewLoadNamingServant(reg, core.ClientRanker{C: winner.NewClient(o, ref)})
		log.Printf("nameserver: load distribution enabled via %v", ref)
	} else {
		servant = core.NewPlainNamingServant(reg)
	}

	ref := ad.Activate(naming.DefaultKey, servant)
	sior := ref.ToString()
	fmt.Println(sior)
	if *obsAddr != "" {
		_, ln, err := o.Observe("nameserver", *obsAddr)
		if err != nil {
			log.Fatalf("nameserver: obs endpoint: %v", err)
		}
		defer ln.Close()
		fmt.Println("OBS:" + ln.Addr().String())
		log.Printf("nameserver: observability on http://%s/metrics", ln.Addr())
	}
	if *refFile != "" {
		if err := os.WriteFile(*refFile, []byte(sior+"\n"), 0o644); err != nil {
			log.Fatalf("nameserver: write ref file: %v", err)
		}
	}
	log.Printf("nameserver: serving on %s", ad.Addr())

	var saveTick <-chan time.Time
	if *store != "" {
		t := time.NewTicker(*savePeriod)
		defer t.Stop()
		saveTick = t.C
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-saveTick:
			if err := reg.SaveFile(*store); err != nil {
				log.Printf("nameserver: snapshot: %v", err)
			}
		case <-sig:
			if *store != "" {
				if err := reg.SaveFile(*store); err != nil {
					log.Printf("nameserver: final snapshot: %v", err)
				}
			}
			log.Print("nameserver: shutting down")
			return
		}
	}
}
