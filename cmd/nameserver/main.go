// Command nameserver runs the naming service as a standalone daemon.
//
// By default it serves the plain (round-robin) service; pass -winner with
// the stringified reference of a Winner system manager to serve the
// paper's load-distribution naming service instead.
//
//	nameserver -addr 127.0.0.1:9001
//	nameserver -addr 127.0.0.1:9001 -winner "$(cat winner.ref)"
//
// Replication: start N replicas, each pointing -peers at the others
// (SIORs or @ref-file specs, resolved lazily so start order is free):
//
//	nameserver -addr 127.0.0.1:9001 -ref-file ns1.ref -peers @ns2.ref,@ns3.ref
//	nameserver -addr 127.0.0.1:9002 -ref-file ns2.ref -peers @ns1.ref,@ns3.ref
//	nameserver -addr 127.0.0.1:9003 -ref-file ns3.ref -peers @ns1.ref,@ns2.ref
//
// Each replica pushes its registry snapshot (with a monotonic epoch) to
// its peers every -sync-period; receivers adopt strictly newer state.
// Leased offers (BindOffer with a TTL) are expired by a sweeper running
// every -sweep-period.
//
// The service's stringified object reference (SIOR) is printed on stdout
// and optionally written to -ref-file for other processes to pick up.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/winner"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9001", "listen address")
	winnerRef := flag.String("winner", "", "SIOR of the Winner system manager (enables load distribution)")
	refFile := flag.String("ref-file", "", "write the service SIOR to this file")
	store := flag.String("store", "", "persist bindings to this snapshot file")
	savePeriod := flag.Duration("save-period", 10*time.Second, "snapshot save interval (with -store)")
	peers := flag.String("peers", "", "comma-separated peer nameserver SIORs or @ref-file specs (enables replication)")
	syncPeriod := flag.Duration("sync-period", time.Second, "replication push interval (with -peers)")
	sweepPeriod := flag.Duration("sweep-period", 500*time.Millisecond, "leased-offer expiry sweep interval")
	pushTimeout := flag.Duration("push-timeout", 2*time.Second, "per-watcher invalidation push timeout")
	watchTTL := flag.Duration("watch-ttl", 5*time.Minute, "drop watchers silent for this long")
	obsAddr := flag.String("obs", "", "serve /metrics, /healthz and /debug endpoints on this address (empty: disabled)")
	dumpDir := flag.String("dump-dir", "", "write anomaly flight-recorder dumps here (empty: disabled)")
	workers := flag.Int("workers", 0, "dispatch worker pool size (0: 2×GOMAXPROCS)")
	readBatch := flag.Int("read-batch", 0, "max request frames per connection read-loop wakeup (0: 32)")
	replyCoalesce := flag.Duration("reply-coalesce", 0, "server reply-coalescing window (0: disabled)")
	qosClasses := flag.String("qos-classes", "", "per-class dispatch weights, e.g. critical:16,normal:4,batch:1")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate in req/s (0: unlimited)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant token-bucket burst (0: rate)")
	degradeHigh := flag.Float64("degrade-high", 0, "load score that steps the runtime one degradation mode down (0: controller disabled)")
	degradeLow := flag.Float64("degrade-low", 0.5, "load score that steps the runtime one degradation mode back up")
	elastic := flag.Bool("elastic", false, "maintain a cluster membership view from offer lifecycle (hosts join on first bound offer, leave on last)")
	flag.Parse()
	slog.SetDefault(obs.NewLogger(os.Stderr, "nameserver", slog.LevelInfo))

	weights, err := orb.ParseClassWeights(*qosClasses)
	if err != nil {
		log.Fatalf("nameserver: -qos-classes: %v", err)
	}
	o := orb.New(orb.Options{Name: "nameserver",
		WorkerPool: *workers, ReadBatch: *readBatch, ReplyCoalesceWindow: *replyCoalesce,
		QoS: orb.QoSOptions{Weights: weights, TenantRate: *tenantRate, TenantBurst: *tenantBurst}})
	defer o.Shutdown()
	if *degradeHigh > 0 {
		stop := o.StartDegradeController(orb.DegradeConfig{High: *degradeHigh, Low: *degradeLow})
		defer stop()
		log.Printf("nameserver: adaptive degradation on (high %.2f, low %.2f)", *degradeHigh, *degradeLow)
	}
	ad, err := o.NewAdapter(*addr)
	if err != nil {
		log.Fatalf("nameserver: %v", err)
	}

	reg := naming.NewRegistry()
	if *store != "" {
		if err := reg.LoadFile(*store); err != nil {
			log.Fatalf("nameserver: %v", err)
		}
		log.Printf("nameserver: persisting bindings to %s", *store)
	}
	var servant *naming.Servant
	var selector *core.WinnerSelector
	if *winnerRef != "" {
		ref, err := orb.RefFromString(*winnerRef)
		if err != nil {
			log.Fatalf("nameserver: bad -winner reference: %v", err)
		}
		selector = core.NewWinnerSelector(core.ClientRanker{C: winner.NewClient(o, ref)}, nil)
		servant = naming.NewServant(reg, selector)
		// Under overload the degradation controller parks the selector on
		// its cheap fallback — the ranking round trip is the first cost shed.
		o.OnDegrade(selector.DegradeHook())
		log.Printf("nameserver: load distribution enabled via %v", ref)
	} else {
		servant = core.NewPlainNamingServant(reg)
	}

	// The push hub observes every registry mutation (including sweeper
	// evictions and adopted peer snapshots) and fans membership updates
	// out to watching clients. The selector ranks pushed membership
	// winner-first so winner-weighted clients bias the same way resolve
	// would.
	var rank func(naming.Name, []naming.OfferLease) []naming.OfferLease
	if selector != nil {
		rank = naming.RankBySelector(selector)
	}
	hub := naming.NewHub(o, reg, naming.HubOptions{
		PushTimeout: *pushTimeout, WatchTTL: *watchTTL, Rank: rank,
	})
	hub.Start()
	defer hub.Stop()
	servant.SetHub(hub)

	// With -elastic the nameserver derives a first-class membership view
	// from offer lifecycle: a host's first bound offer is a Join, its last
	// offer unbinding (explicitly or by sweeper eviction) is a Leave. The
	// observer runs under the registry lock, so it must only refcount and
	// feed membership — never call back into the registry.
	var membership *cluster.Membership
	if *elastic {
		membership = cluster.NewMembership(cluster.WithMembershipLogger(slog.Default()))
		tracker := membership.TrackOffers("naming")
		reg.SetOfferObserver(func(n naming.Name, o naming.Offer, bound bool) {
			if bound {
				tracker.Bound(o.Host)
			} else {
				tracker.Unbound(o.Host)
			}
		})
		log.Print("nameserver: elastic membership view on (offer lifecycle drives join/leave)")
	}

	sweeper := naming.NewSweeper(reg, naming.SweeperOptions{Period: *sweepPeriod})
	sweeper.Start()
	defer sweeper.Stop()

	var repl *naming.Replicator
	if *peers != "" {
		specs := naming.ParsePeerSpecs(*peers)
		repl = naming.NewReplicator(o, reg, specs, naming.ReplicatorOptions{Period: *syncPeriod})
		repl.Start()
		defer repl.Stop()
		log.Printf("nameserver: replicating to %d peers every %v", len(specs), *syncPeriod)
	}

	ref := ad.Activate(naming.DefaultKey, servant)
	sior := ref.ToString()
	fmt.Println(sior)
	if *obsAddr != "" {
		ob, ln, err := o.ObserveOpts("nameserver", *obsAddr,
			obs.ObserverOptions{Anomaly: obs.AnomalyOptions{DumpDir: *dumpDir}})
		if err != nil {
			log.Fatalf("nameserver: obs endpoint: %v", err)
		}
		defer ln.Close()
		ob.Health.Register("hub", hub.HealthProbe)
		if repl != nil {
			ob.Health.Register("replication", repl.HealthProbe)
		}
		ob.Registry.NewCounterFunc("naming_offers_evicted_total",
			"Leased offers expired and unbound by the sweeper.", sweeper.Evicted)
		ob.Registry.NewGaugeFunc("naming_epoch",
			"Monotonic registry mutation epoch.", func() float64 { return float64(reg.Epoch()) })
		ob.Registry.NewCounterFunc("naming_snapshots_adopted_total",
			"Peer snapshots adopted by this replica.", reg.SnapshotsAdopted)
		hub.ExportMetrics(ob.Registry)
		ob.Registry.NewCounterFunc("naming_resolves_total",
			"Resolve requests served (the number pushes exist to keep flat).",
			servant.Resolves)
		ob.Registry.NewCounterFunc("naming_watch_requests_total",
			"Watch registrations served (subscriptions and re-watches).",
			servant.WatchRequests)
		if selector != nil {
			ob.Registry.NewCounterFunc("winner_fallback_total",
				"Resolves that degraded to the fallback selector.", selector.Fallbacks)
		}
		if repl != nil {
			ob.Registry.NewCounterFunc("naming_replication_pushes_total",
				"Successful snapshot pushes to peers.", repl.Pushes)
			ob.Registry.NewCounterFunc("naming_replication_push_errors_total",
				"Failed snapshot pushes to peers.", repl.PushErrors)
		}
		if membership != nil {
			membership.ExportMetrics(ob.Registry)
		}
		fmt.Println("OBS:" + ln.Addr().String())
		log.Printf("nameserver: observability on http://%s/metrics", ln.Addr())
	}
	if *refFile != "" {
		if err := os.WriteFile(*refFile, []byte(sior+"\n"), 0o644); err != nil {
			log.Fatalf("nameserver: write ref file: %v", err)
		}
	}
	log.Printf("nameserver: serving on %s", ad.Addr())

	var saveTick <-chan time.Time
	if *store != "" {
		t := time.NewTicker(*savePeriod)
		defer t.Stop()
		saveTick = t.C
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-saveTick:
			if err := reg.SaveFile(*store); err != nil {
				log.Printf("nameserver: snapshot: %v", err)
			}
		case <-sig:
			if *store != "" {
				if err := reg.SaveFile(*store); err != nil {
					log.Printf("nameserver: final snapshot: %v", err)
				}
			}
			log.Print("nameserver: shutting down")
			return
		}
	}
}
