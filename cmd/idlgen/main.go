// Command idlgen compiles the mini-IDL dialect to Go: for each interface
// it generates a typed client stub, a server skeleton and a
// fault-tolerant proxy class — automating the proxy generation the paper
// performs by hand ("this could be easily automated by parsing the class
// definition").
//
//	idlgen -in bank.idl -out bank_gen.go -package bank
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/idl"
)

func main() {
	in := flag.String("in", "", "input .idl file (required)")
	out := flag.String("out", "", "output .go file (default: stdout)")
	pkg := flag.String("package", "", "Go package name (default: lower-cased module name)")
	source := flag.String("source", "", "source path recorded in the generated header (default: -in)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		log.Fatalf("idlgen: %v", err)
	}
	mod, err := idl.Parse(string(src))
	if err != nil {
		log.Fatalf("idlgen: %v", err)
	}
	if *source == "" {
		*source = *in
	}
	code, err := idl.Generate(mod, idl.GenOptions{Package: *pkg, Source: *source})
	if err != nil {
		log.Fatalf("idlgen: %v", err)
	}
	if *out == "" {
		fmt.Print(string(code))
		return
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		log.Fatalf("idlgen: %v", err)
	}
	log.Printf("idlgen: wrote %s (%d bytes)", *out, len(code))
}
