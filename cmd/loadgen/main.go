// Command loadgen generates artificial load two ways.
//
// CPU mode (the paper's experiments load selected workstations — "a
// background load was generated on 0, 2, 4, 6 or 8 hosts"): spin the
// requested number of CPU-bound worker loops for the requested duration.
//
//	loadgen -procs 2 -duration 5m
//
// Naming-storm mode: simulate a fleet of clients that hold a group ref
// over the push-based naming cache. Each simulated client subscribes
// once (one watch RPC), then picks a member every -pick-interval from
// pushed membership — zero resolve traffic while members die and
// return. This is the client side of the resolve-storm acceptance
// scenario; kill a group member mid-run and watch the nameserver's
// naming_resolves_total stay flat while picks keep succeeding.
//
//	loadgen -ns @ns1.ref -watch-clients 10000 -group svc/workers -duration 2m
//
// Mixed-priority mode: drive the naming service's resolve path with a
// blend of QoS classes past saturation and watch admission control work.
// -qos-mix gives the client count per class; each client stamps its
// calls with its class (and a tenant id when -tenants is set) and counts
// successes, admission sheds and other failures separately. Pair with a
// server running -tenant-rate / -degrade-high to see batch shed first
// while critical latency stays flat:
//
//	loadgen -ns @ns1.ref -qos-mix critical:2,normal:8,batch:32 -tenants 4 -duration 1m
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/naming"
	"repro/internal/orb"
)

func main() {
	procs := flag.Int("procs", 1, "number of CPU-bound load loops (CPU mode)")
	duration := flag.Duration("duration", 0, "stop after this long (0: until interrupted)")
	nsRef := flag.String("ns", "", "naming service SIOR or @ref-file (enables naming-storm mode)")
	clients := flag.Int("watch-clients", 1000, "simulated subscribing clients (naming-storm mode)")
	group := flag.String("group", "svc/workers", "group name the clients hold a ref to")
	pickInterval := flag.Duration("pick-interval", 100*time.Millisecond, "per-client member pick cadence")
	obsAddr := flag.String("obs", "", "serve /metrics, /healthz and /debug endpoints on this address (naming-storm mode; empty: disabled)")
	qosMix := flag.String("qos-mix", "", "per-class client counts, e.g. critical:2,normal:8,batch:32 (enables mixed-priority mode; needs -ns)")
	tenants := flag.Int("tenants", 0, "spread mixed-priority clients over this many tenant ids (0: anonymous)")
	callInterval := flag.Duration("call-interval", 10*time.Millisecond, "per-client call cadence (mixed-priority mode)")
	flag.Parse()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *qosMix != "" {
		if *nsRef == "" {
			log.Fatal("loadgen: -qos-mix needs -ns")
		}
		runQoSMix(*nsRef, *qosMix, *group, *tenants, *callInterval, *duration, sig)
		return
	}
	if *nsRef != "" {
		runNamingStorm(*nsRef, *clients, *group, *pickInterval, *duration, *obsAddr, sig)
		return
	}

	if *procs < 1 {
		log.Fatal("loadgen: -procs must be >= 1")
	}
	var stop atomic.Bool
	for i := 0; i < *procs; i++ {
		go func(seed float64) {
			x := seed
			for !stop.Load() {
				// Arbitrary FP churn the compiler cannot remove.
				x = math.Sqrt(x*x+1.000001) * 0.999999
				if x > 1e12 {
					x = seed
				}
			}
			sinkFloat(x)
		}(float64(i + 2))
	}
	log.Printf("loadgen: %d load processes running", *procs)
	wait(duration, sig)
	stop.Store(true)
	log.Print("loadgen: done")
}

func wait(duration *time.Duration, sig chan os.Signal) {
	if *duration > 0 {
		select {
		case <-time.After(*duration):
		case <-sig:
		}
	} else {
		<-sig
	}
}

// runNamingStorm spins n simulated clients, each with its own GroupCache
// (own subscription, own pushed view) sharing one ORB and one listener
// adapter, picking from the group on a cadence.
func runNamingStorm(refSpec string, n int, group string, pickEvery time.Duration, duration time.Duration, obsAddr string, sig chan os.Signal) {
	if strings.HasPrefix(refSpec, "@") {
		raw, err := os.ReadFile(refSpec[1:])
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		refSpec = strings.TrimSpace(string(raw))
	}
	ref, err := orb.RefFromString(refSpec)
	if err != nil {
		log.Fatalf("loadgen: bad -ns reference: %v", err)
	}
	name, err := naming.ParseName(group)
	if err != nil {
		log.Fatalf("loadgen: bad -group name: %v", err)
	}

	o := orb.New(orb.Options{Name: "loadgen"})
	defer o.Shutdown()
	ad, err := o.NewAdapter("127.0.0.1:0")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	ns := naming.NewClient(o, ref)

	var picksOK, picksFail atomic.Uint64
	if obsAddr != "" {
		// The observer makes the load generator itself diagnosable: its
		// flight recorder captures the client-side view of pushes and
		// picks, and /healthz turns red when picks start failing.
		ob, ln, err := o.Observe("loadgen", obsAddr)
		if err != nil {
			log.Fatalf("loadgen: obs endpoint: %v", err)
		}
		defer ln.Close()
		ob.Registry.NewCounterFunc("loadgen_picks_ok_total",
			"Group member picks that succeeded.", picksOK.Load)
		ob.Registry.NewCounterFunc("loadgen_picks_failed_total",
			"Group member picks that failed.", picksFail.Load)
		ob.Health.Register("picks", func() error {
			if ok, fail := picksOK.Load(), picksFail.Load(); fail > 0 && fail >= ok {
				return fmt.Errorf("%d of %d picks failing", fail, ok+fail)
			}
			return nil
		})
		log.Printf("loadgen: observability on http://%s/metrics", ln.Addr())
	}
	caches := make([]*naming.GroupCache, n)
	refs := make([]*naming.GroupRef, n)
	for i := range caches {
		caches[i] = naming.NewGroupCache(ad, ns, naming.GroupCacheOptions{
			Refresh: 5 * time.Minute, // pushes carry the updates; refresh is insurance
		})
		refs[i] = caches[i].Group(name, naming.SpreadRoundRobin)
	}
	log.Printf("loadgen: %d watch clients on %s (group %s)", n, ref.Addr, name)

	var stop atomic.Bool
	for i := range refs {
		go func(g *naming.GroupRef) {
			t := time.NewTicker(pickEvery)
			defer t.Stop()
			for !stop.Load() {
				<-t.C
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, err := g.Pick(ctx)
				cancel()
				if err != nil {
					picksFail.Add(1)
				} else {
					picksOK.Add(1)
				}
			}
		}(refs[i])
	}

	wait(&duration, sig)
	stop.Store(true)
	var applied, resub uint64
	for _, c := range caches {
		applied += c.Applied()
		resub += c.Resubscribes()
		c.Close()
	}
	log.Printf("loadgen: picks ok=%d fail=%d, invalidations applied=%d, resubscribes=%d",
		picksOK.Load(), picksFail.Load(), applied, resub)
}

// runQoSMix drives the naming service's resolve path with a blend of QoS
// classes past saturation. Each simulated client owns a stub stamped with
// its class (and a tenant id when -tenants is set) and resolves the group
// name on a cadence; outcomes are tallied per class with admission sheds
// (TRANSIENT carrying a retry-after hint) split from other failures, so a
// run against an overloaded server shows batch shedding while critical
// stays clean.
func runQoSMix(refSpec, mix, group string, tenants int, every, duration time.Duration, sig chan os.Signal) {
	if strings.HasPrefix(refSpec, "@") {
		raw, err := os.ReadFile(refSpec[1:])
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		refSpec = strings.TrimSpace(string(raw))
	}
	ref, err := orb.RefFromString(refSpec)
	if err != nil {
		log.Fatalf("loadgen: bad -ns reference: %v", err)
	}
	name, err := naming.ParseName(group)
	if err != nil {
		log.Fatalf("loadgen: bad -group name: %v", err)
	}
	var counts [orb.NumClasses]int
	for _, part := range strings.Split(mix, ",") {
		cls, val, ok := strings.Cut(part, ":")
		if !ok {
			log.Fatalf("loadgen: bad -qos-mix entry %q (want class:count)", part)
		}
		p, err := orb.ParsePriority(cls)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 0 {
			log.Fatalf("loadgen: bad count in -qos-mix entry %q", part)
		}
		counts[p] = n
	}

	o := orb.New(orb.Options{Name: "loadgen"})
	defer o.Shutdown()

	var okN, shedN, failN [orb.NumClasses]atomic.Uint64
	var stop atomic.Bool
	tenant := 0
	total := 0
	for class := orb.Priority(0); class < orb.NumClasses; class++ {
		for i := 0; i < counts[class]; i++ {
			opts := []orb.CallOption{orb.WithPriority(class)}
			if tenants > 0 {
				opts = append(opts, orb.WithTenant(fmt.Sprintf("tenant-%d", tenant%tenants)))
				tenant++
			}
			ns := naming.NewClient(o, ref)
			ns.SetCallOptions(opts...)
			total++
			go func(class orb.Priority, ns *naming.Client) {
				t := time.NewTicker(every)
				defer t.Stop()
				for !stop.Load() {
					<-t.C
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					_, err := ns.Resolve(ctx, name)
					cancel()
					switch {
					case err == nil:
						okN[class].Add(1)
					case orb.IsAdmissionShed(err):
						shedN[class].Add(1)
					default:
						failN[class].Add(1)
					}
				}
			}(class, ns)
		}
	}
	log.Printf("loadgen: %d mixed-priority clients on %s (group %s, every %v)", total, ref.Addr, name, every)
	wait(&duration, sig)
	stop.Store(true)
	for _, class := range []orb.Priority{orb.ClassCritical, orb.ClassNormal, orb.ClassBatch} {
		if counts[class] == 0 {
			continue
		}
		log.Printf("loadgen: %-8s ok=%d shed=%d fail=%d",
			class, okN[class].Load(), shedN[class].Load(), failN[class].Load())
	}
}

//go:noinline
func sinkFloat(float64) {}
