// Command loadgen generates artificial background load, the way the
// paper's experiments load selected workstations ("a background load was
// generated on 0, 2, 4, 6 or 8 hosts"): it spins the requested number of
// CPU-bound worker loops for the requested duration.
//
//	loadgen -procs 2 -duration 5m
package main

import (
	"flag"
	"log"
	"math"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"
)

func main() {
	procs := flag.Int("procs", 1, "number of CPU-bound load loops")
	duration := flag.Duration("duration", 0, "stop after this long (0: until interrupted)")
	flag.Parse()
	if *procs < 1 {
		log.Fatal("loadgen: -procs must be >= 1")
	}

	var stop atomic.Bool
	for i := 0; i < *procs; i++ {
		go func(seed float64) {
			x := seed
			for !stop.Load() {
				// Arbitrary FP churn the compiler cannot remove.
				x = math.Sqrt(x*x+1.000001) * 0.999999
				if x > 1e12 {
					x = seed
				}
			}
			sinkFloat(x)
		}(float64(i + 2))
	}
	log.Printf("loadgen: %d load processes running", *procs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-time.After(*duration):
		case <-sig:
		}
	} else {
		<-sig
	}
	stop.Store(true)
	log.Print("loadgen: done")
}

//go:noinline
func sinkFloat(float64) {}
