// Command rosenbench regenerates the paper's evaluation.
//
//	rosenbench -experiment fig3    # Figure 3: load distribution benefit
//	rosenbench -experiment table1  # Table 1: fault-tolerance overhead
//	rosenbench -experiment both    # everything (default)
//
// Figure 3 runs on the simulated 10-workstation NOW in virtual time
// (deterministic); Table 1 measures real wall-clock overhead of
// checkpointing proxies over loopback TCP. Use -quick for a small, fast
// variant of both sweeps, and -json for machine-readable output (the
// experiment name, its parameters, and the virtual/real runtimes) instead
// of the rendered tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// jsonReport is the -json output document: one entry per experiment run,
// each carrying its full parameter set and its raw result rows so the
// numbers can be re-plotted without scraping the rendered tables.
type jsonReport struct {
	Experiment string          `json:"experiment"`
	Quick      bool            `json:"quick"`
	Seed       int64           `json:"seed"`
	Figure3    *fig3Result     `json:"figure3,omitempty"`
	Table1     *table1Result   `json:"table1,omitempty"`
	Saturate   *saturateResult `json:"saturate,omitempty"`
}

type saturateResult struct {
	Config experiments.SaturateConfig `json:"config"`
	Rows   []experiments.SaturateRow  `json:"rows"`
}

type fig3Result struct {
	// RuntimeUnit documents the time base: Figure 3 runs in the NOW
	// simulator, so Plain/Winner are virtual seconds.
	RuntimeUnit string                      `json:"runtime_unit"`
	Config      experiments.Figure3Config   `json:"config"`
	Series      []experiments.Figure3Series `json:"series"`
}

type table1Result struct {
	// RuntimeUnit documents the time base: Table 1 measures wall-clock
	// time over loopback TCP, so Plain/Proxy are real seconds.
	RuntimeUnit string                   `json:"runtime_unit"`
	Config      experiments.Table1Config `json:"config"`
	Rows        []experiments.Table1Row  `json:"rows"`
}

func main() {
	experiment := flag.String("experiment", "both", "fig3 | table1 | both")
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	workerIters := flag.Int("worker-iters", 0, "override worker Complex Box iterations (fig3)")
	managerIters := flag.Int("manager-iters", 0, "override manager Complex Box iterations")
	seed := flag.Int64("seed", 1, "random seed")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of rendered tables")
	trace := flag.Bool("trace", false, "collect RPC traces during table1 and print a latency/trace report")
	flightrec := flag.String("flightrec", "", "with -trace, save the flight-recorder snapshot to this JSON file after table1")
	traceTop := flag.Int("trace-top", 5, "number of slowest traces to print with -trace")
	saturate := flag.Bool("saturate", false, "run the reactor saturation sweep instead of the paper experiments")
	workers := flag.Int("workers", 0, "server dispatch worker pool size for -saturate (0 = default)")
	readBatch := flag.Int("read-batch", 0, "server frames-per-wakeup batch cap for -saturate (0 = default)")
	replyCoalesce := flag.Duration("reply-coalesce", 100*time.Microsecond, "server reply-coalescing window for -saturate (0 disables)")
	flag.Parse()

	if *saturate {
		cfg := experiments.DefaultSaturateConfig()
		cfg.WorkerPool = *workers
		cfg.ReadBatch = *readBatch
		cfg.ReplyCoalesceWindow = *replyCoalesce
		if *quick {
			cfg.Concurrency = []int{1, 8, 32}
			cfg.Duration = 100 * time.Millisecond
		}
		rows, err := experiments.RunSaturate(cfg)
		if err != nil {
			log.Fatalf("rosenbench: saturate: %v", err)
		}
		if *jsonOut {
			report := jsonReport{Experiment: "saturate", Quick: *quick, Seed: *seed,
				Saturate: &saturateResult{Config: cfg, Rows: rows}}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				log.Fatalf("rosenbench: encode json: %v", err)
			}
			return
		}
		experiments.RenderSaturate(os.Stdout, rows)
		return
	}

	runFig3 := *experiment == "fig3" || *experiment == "both"
	runTable1 := *experiment == "table1" || *experiment == "both"
	if !runFig3 && !runTable1 {
		log.Fatalf("rosenbench: unknown experiment %q", *experiment)
	}

	report := jsonReport{Experiment: *experiment, Quick: *quick, Seed: *seed}

	var ob *obs.Observer
	if *trace {
		// The observer rides every ORB of the table1 deployment; making
		// its tracer the process default also roots the manager's
		// per-round spans (rosen.round) in the same ring, so each
		// optimization round reads as one trace.
		ob = obs.NewObserver("rosenbench")
		obs.SetDefault(ob.Tracer)
	}

	if runFig3 {
		cfg := experiments.DefaultFigure3Config()
		cfg.Seed = *seed
		if *quick {
			cfg.Cases = []experiments.Figure3Case{
				{N: 30, Workers: 3, WorkerHosts: 5},
			}
			cfg.WorkerIterations = 60
			cfg.ManagerIterations = 5
		}
		if *workerIters > 0 {
			cfg.WorkerIterations = *workerIters
		}
		if *managerIters > 0 {
			cfg.ManagerIterations = *managerIters
		}
		series, err := experiments.RunFigure3(cfg)
		if err != nil {
			log.Fatalf("rosenbench: figure 3: %v", err)
		}
		if *jsonOut {
			report.Figure3 = &fig3Result{RuntimeUnit: "virtual_seconds", Config: cfg, Series: series}
		} else {
			experiments.RenderFigure3(os.Stdout, series)
			fmt.Println()
			experiments.RenderFigure3Chart(os.Stdout, series)
			fmt.Println()
		}
	}

	if runTable1 {
		if runFig3 && !*jsonOut {
			experiments.RenderSeparator(os.Stdout)
			fmt.Println()
		}
		cfg := experiments.DefaultTable1Config()
		cfg.Seed = *seed
		cfg.Observer = ob
		if *quick {
			cfg.N, cfg.Workers = 30, 3
			cfg.Iterations = []int{100, 1000, 5000}
		}
		if *managerIters > 0 {
			cfg.ManagerIterations = *managerIters
		}
		rows, err := experiments.RunTable1(cfg)
		if err != nil {
			log.Fatalf("rosenbench: table 1: %v", err)
		}
		if *jsonOut {
			report.Table1 = &table1Result{RuntimeUnit: "real_seconds", Config: cfg, Rows: rows}
		} else {
			experiments.RenderTable1(os.Stdout, rows)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatalf("rosenbench: encode json: %v", err)
		}
	}

	if ob != nil {
		// With -json the report goes to stderr so stdout stays parseable.
		out := io.Writer(os.Stdout)
		if *jsonOut {
			out = os.Stderr
		} else {
			experiments.RenderSeparator(out)
		}
		experiments.RenderTraceReport(out, ob, *traceTop)
		if *flightrec != "" {
			f, err := os.Create(*flightrec)
			if err != nil {
				log.Fatalf("rosenbench: flightrec: %v", err)
			}
			if err := ob.Flight.WriteJSON(f); err != nil {
				log.Fatalf("rosenbench: flightrec: %v", err)
			}
			f.Close()
			log.Printf("rosenbench: flight recorder saved to %s (%d records)", *flightrec, ob.Flight.Len())
		}
	}
}
