// Command rosenbench regenerates the paper's evaluation.
//
//	rosenbench -experiment fig3    # Figure 3: load distribution benefit
//	rosenbench -experiment table1  # Table 1: fault-tolerance overhead
//	rosenbench -experiment both    # everything (default)
//
// Figure 3 runs on the simulated 10-workstation NOW in virtual time
// (deterministic); Table 1 measures real wall-clock overhead of
// checkpointing proxies over loopback TCP. Use -quick for a small, fast
// variant of both sweeps.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "both", "fig3 | table1 | both")
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	workerIters := flag.Int("worker-iters", 0, "override worker Complex Box iterations (fig3)")
	managerIters := flag.Int("manager-iters", 0, "override manager Complex Box iterations")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	runFig3 := *experiment == "fig3" || *experiment == "both"
	runTable1 := *experiment == "table1" || *experiment == "both"
	if !runFig3 && !runTable1 {
		log.Fatalf("rosenbench: unknown experiment %q", *experiment)
	}

	if runFig3 {
		cfg := experiments.DefaultFigure3Config()
		cfg.Seed = *seed
		if *quick {
			cfg.Cases = []experiments.Figure3Case{
				{N: 30, Workers: 3, WorkerHosts: 5},
			}
			cfg.WorkerIterations = 60
			cfg.ManagerIterations = 5
		}
		if *workerIters > 0 {
			cfg.WorkerIterations = *workerIters
		}
		if *managerIters > 0 {
			cfg.ManagerIterations = *managerIters
		}
		series, err := experiments.RunFigure3(cfg)
		if err != nil {
			log.Fatalf("rosenbench: figure 3: %v", err)
		}
		experiments.RenderFigure3(os.Stdout, series)
		fmt.Println()
		experiments.RenderFigure3Chart(os.Stdout, series)
		fmt.Println()
	}

	if runTable1 {
		if runFig3 {
			experiments.RenderSeparator(os.Stdout)
			fmt.Println()
		}
		cfg := experiments.DefaultTable1Config()
		cfg.Seed = *seed
		if *quick {
			cfg.N, cfg.Workers = 30, 3
			cfg.Iterations = []int{100, 1000, 5000}
		}
		if *managerIters > 0 {
			cfg.ManagerIterations = *managerIters
		}
		rows, err := experiments.RunTable1(cfg)
		if err != nil {
			log.Fatalf("rosenbench: table 1: %v", err)
		}
		experiments.RenderTable1(os.Stdout, rows)
	}
}
