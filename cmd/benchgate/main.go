// Command benchgate converts `go test -bench -benchmem` output into a
// machine-readable JSON artifact and gates regressions against a
// checked-in baseline: CI fails when any tracked benchmark's allocs/op
// (or, with -max-time-regress, its ns/op) grows past the allowed
// percentage over its baseline value.
//
// Usage:
//
//	go test -run '^$' -bench X -benchmem ./... | benchgate -out BENCH_PR6.json -baseline BENCH_BASELINE_PR6.json
//
// With no -baseline the tool only records. The baseline file has the same
// schema as -out, so promoting a run to baseline is a file copy.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON artifact.
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

// parse consumes `go test -bench` output. Lines look like:
//
//	BenchmarkCallPath/sync-8   5000   18068 ns/op   3592 B/op   36 allocs/op
//
// with an optional -N cpu suffix stripped from the name and custom metrics
// as extra "value unit" pairs.
func parse(r *bufio.Scanner) ([]Result, error) {
	var out []Result
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: name, Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesOp = v
			case "allocs/op":
				res.AllocsOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out = append(out, res)
	}
	return out, r.Err()
}

func load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func main() {
	out := flag.String("out", "", "write parsed results as JSON to this file")
	baseline := flag.String("baseline", "", "baseline JSON to gate allocs/op against")
	maxRegress := flag.Float64("max-allocs-regress", 10, "allowed allocs/op growth over baseline, percent")
	maxTimeRegress := flag.Float64("max-time-regress", 0, "allowed ns/op growth over baseline, percent (0: ns/op not gated)")
	flag.Parse()

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: read:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines on stdin")
		os.Exit(1)
	}
	rep := &Report{Benchmarks: results}
	if *out != "" {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		raw = append(raw, '\n')
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: write:", err)
			os.Exit(1)
		}
	}
	if *baseline == "" {
		return
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: baseline:", err)
		os.Exit(1)
	}
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	failed := false
	for _, cur := range results {
		b, ok := baseBy[cur.Name]
		if !ok {
			continue
		}
		if b.AllocsOp != 0 {
			growth := 100 * (cur.AllocsOp - b.AllocsOp) / b.AllocsOp
			status := "ok"
			if growth > *maxRegress {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%-40s allocs/op %8.1f -> %8.1f (%+6.1f%%) %s\n",
				cur.Name, b.AllocsOp, cur.AllocsOp, growth, status)
		} else if cur.AllocsOp > b.AllocsOp {
			// A zero-alloc baseline is an absolute promise: any allocation
			// at all is a regression (percentages cannot express this).
			failed = true
			fmt.Printf("%-40s allocs/op %8.1f -> %8.1f FAIL (zero-alloc baseline)\n",
				cur.Name, b.AllocsOp, cur.AllocsOp)
		}
		if *maxTimeRegress > 0 && b.NsPerOp > 0 {
			growth := 100 * (cur.NsPerOp - b.NsPerOp) / b.NsPerOp
			status := "ok"
			if growth > *maxTimeRegress {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%-40s ns/op     %8.0f -> %8.0f (%+6.1f%%) %s\n",
				cur.Name, b.NsPerOp, cur.NsPerOp, growth, status)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: regression past allowed thresholds (allocs %.1f%%, time %.1f%%) vs %s\n",
			*maxRegress, *maxTimeRegress, *baseline)
		os.Exit(1)
	}
}
