// Command nsadmin inspects and edits a running naming service.
//
//	nsadmin -ns "$SIOR" list [path]        # list bindings of a context
//	nsadmin -ns "$SIOR" tree               # recursive dump of the tree
//	nsadmin -ns "$SIOR" resolve a/b        # resolve a name
//	nsadmin -ns "$SIOR" offers a/b         # list a group's offers
//	nsadmin -ns "$SIOR" leases a/b         # list offers with lease state
//	nsadmin -ns "$SIOR" leases -stale a/b  # only leases at risk / expired
//	nsadmin -ns "$SIOR" watches            # names with push subscribers
//	nsadmin -ns "$SIOR" bind a/b "$SIOR2"  # bind a stringified reference
//	nsadmin -ns "$SIOR" unbind a/b         # remove a binding
//	nsadmin -ns "$SIOR" mkdir a/b          # create a sub-context
//	nsadmin -ns "$SIOR" ping a/b           # resolve and liveness-probe
//	nsadmin health 127.0.0.1:8080          # query a daemon's /healthz
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
)

func main() {
	nsRefStr := flag.String("ns", "", "SIOR of the naming service (required except for health)")
	timeout := flag.Duration("timeout", 5*time.Second, "overall deadline for the command")
	flag.Parse()
	// health talks HTTP to a daemon's obs endpoint, not GIOP to the
	// naming service, so it runs before the -ns requirement.
	if flag.Arg(0) == "health" {
		if flag.NArg() < 2 {
			log.Fatal("nsadmin: health needs an obs address (host:port)")
		}
		os.Exit(healthCmd(flag.Arg(1), *timeout))
	}
	if *nsRefStr == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	nsRef, err := orb.RefFromString(*nsRefStr)
	if err != nil {
		log.Fatalf("nsadmin: bad -ns reference: %v", err)
	}
	o := orb.New(orb.Options{Name: "nsadmin"})
	defer o.Shutdown()
	ns := naming.NewClient(o, nsRef)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cmd := flag.Arg(0)
	arg := func(i int) string {
		if flag.NArg() <= i {
			log.Fatalf("nsadmin: %s needs more arguments", cmd)
		}
		return flag.Arg(i)
	}
	parse := func(s string) naming.Name {
		n, err := naming.ParseName(s)
		if err != nil {
			log.Fatalf("nsadmin: %v", err)
		}
		return n
	}

	switch cmd {
	case "list":
		var name naming.Name
		if flag.NArg() > 1 {
			name = parse(flag.Arg(1))
		}
		bindings, err := ns.List(ctx, name)
		if err != nil {
			log.Fatalf("nsadmin: %v", err)
		}
		for _, b := range bindings {
			fmt.Printf("%-10s %s\n", typeLabel(b.Type), b.Name)
		}

	case "tree":
		if err := tree(ctx, ns, nil, ""); err != nil {
			log.Fatalf("nsadmin: %v", err)
		}

	case "resolve":
		ref, err := ns.Resolve(ctx, parse(arg(1)))
		if err != nil {
			log.Fatalf("nsadmin: %v", err)
		}
		fmt.Println(ref.ToString())
		fmt.Println(ref)

	case "offers":
		offers, err := ns.ListOffers(ctx, parse(arg(1)))
		if err != nil {
			log.Fatalf("nsadmin: %v", err)
		}
		for _, of := range offers {
			fmt.Printf("%-12s %v\n", of.Host, of.Ref)
		}

	case "leases":
		fs := flag.NewFlagSet("leases", flag.ExitOnError)
		stale := fs.Bool("stale", false, "show only expired leases and leases past 2/3 of their TTL")
		if err := fs.Parse(flag.Args()[1:]); err != nil {
			log.Fatalf("nsadmin: %v", err)
		}
		if fs.NArg() < 1 {
			log.Fatal("nsadmin: leases needs a group name")
		}
		leases, err := ns.ListLeases(ctx, parse(fs.Arg(0)))
		if err != nil {
			log.Fatalf("nsadmin: %v", err)
		}
		for _, l := range leases {
			if *stale && !staleLease(l) {
				continue
			}
			fmt.Printf("%-12s %-10s %v\n", l.Offer.Host, leaseLabel(l), l.Offer.Ref)
		}

	case "watches":
		watches, err := ns.ListWatches(ctx)
		if err != nil {
			log.Fatalf("nsadmin: %v", err)
		}
		for _, w := range watches {
			fmt.Printf("%-8d %s\n", w.Watchers, w.Name)
		}

	case "bind":
		target, err := orb.RefFromString(arg(2))
		if err != nil {
			log.Fatalf("nsadmin: bad target reference: %v", err)
		}
		if err := ns.Bind(ctx, parse(arg(1)), target); err != nil {
			log.Fatalf("nsadmin: %v", err)
		}

	case "unbind":
		if err := ns.Unbind(ctx, parse(arg(1))); err != nil {
			log.Fatalf("nsadmin: %v", err)
		}

	case "mkdir":
		if err := ns.BindNewContext(ctx, parse(arg(1))); err != nil {
			log.Fatalf("nsadmin: %v", err)
		}

	case "ping":
		ref, err := ns.Resolve(ctx, parse(arg(1)))
		if err != nil {
			log.Fatalf("nsadmin: resolve: %v", err)
		}
		if err := o.Ping(ctx, ref); err != nil {
			fmt.Printf("DEAD  %v: %v\n", ref, err)
			os.Exit(1)
		}
		fmt.Printf("ALIVE %v\n", ref)

	default:
		log.Fatalf("nsadmin: unknown command %q", cmd)
	}
}

// healthCmd fetches and renders a daemon's /healthz report. Exit status:
// 0 healthy, 1 degraded, 2 unreachable or undecodable.
func healthCmd(addr string, timeout time.Duration) int {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		log.Printf("nsadmin: %v", err)
		return 2
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Printf("nsadmin: %v", err)
		return 2
	}
	defer resp.Body.Close()
	var rep obs.HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		log.Printf("nsadmin: decode /healthz: %v", err)
		return 2
	}
	fmt.Printf("%-10s %s\n", rep.Status, rep.Service)
	components := make([]string, 0, len(rep.Components))
	for name := range rep.Components {
		components = append(components, name)
	}
	sort.Strings(components)
	for _, name := range components {
		c := rep.Components[name]
		state := "ok"
		if !c.OK {
			state = "FAIL"
		}
		fmt.Printf("  %-10s %-4s %s\n", name, state, c.Detail)
	}
	for _, an := range rep.Anomalies {
		fmt.Printf("  anomaly    %s x%d %s %s\n",
			an.Kind, an.Count, an.Time.Format(time.RFC3339), an.Detail)
	}
	if !rep.OK() {
		return 1
	}
	return 0
}

// staleLease reports whether a lease deserves operator attention: it has
// already expired (awaiting the sweeper) or less than a third of its TTL
// remains — i.e. at least two renewal ticks were missed. Leaseless offers
// never expire and are never stale.
func staleLease(l naming.OfferLease) bool {
	if l.Offer.LeaseTTL <= 0 {
		return false
	}
	return l.Remaining <= l.Offer.LeaseTTL/3
}

// leaseLabel renders the lease state column.
func leaseLabel(l naming.OfferLease) string {
	if l.Offer.LeaseTTL <= 0 {
		return "-"
	}
	if l.Remaining <= 0 {
		return "EXPIRED"
	}
	return l.Remaining.Round(time.Millisecond).String()
}

func typeLabel(t naming.BindingType) string {
	switch t {
	case naming.BindObject:
		return "object"
	case naming.BindContext:
		return "context"
	case naming.BindGroup:
		return "group"
	case naming.BindRemote:
		return "remote"
	default:
		return "?"
	}
}

// tree prints the naming tree recursively.
func tree(ctx context.Context, ns *naming.Client, at naming.Name, indent string) error {
	bindings, err := ns.List(ctx, at)
	if err != nil {
		return err
	}
	for _, b := range bindings {
		fmt.Printf("%s%-10s %s\n", indent, typeLabel(b.Type), b.Name)
		if b.Type == naming.BindContext {
			sub := append(append(naming.Name{}, at...), b.Name...)
			if err := tree(ctx, ns, sub, indent+"  "); err != nil {
				return err
			}
		}
	}
	return nil
}
