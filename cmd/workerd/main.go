// Command workerd runs one Rosenbrock worker service as a standalone
// process: a checkpointable subproblem solver wrapped for the ft layer,
// announced to the naming service as a leased group offer so the elastic
// manager can discover it, claim it, and — when the process dies or its
// lease lapses — notice its departure and re-decompose.
//
//	workerd -addr 127.0.0.1:0 -ns "$(cat /tmp/ns.ref)" -host node07 -ttl 2s
//
// The first stdout line is the worker's SIOR (printed after the naming
// registration succeeds, so a parent that has read it may immediately
// resolve the group).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ft"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/rosen"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address")
	nsSIOR := flag.String("ns", "", "naming service SIOR to announce the worker to (empty: no registration)")
	host := flag.String("host", "", "logical host name carried in the offer (default: the hostname)")
	ttl := flag.Duration("ttl", 2*time.Second, "offer lease TTL; 0 binds without a lease")
	obsAddr := flag.String("obs", "", "serve /metrics, /healthz and /debug endpoints on this address (empty: disabled)")
	workers := flag.Int("workers", 0, "dispatch worker pool size (0: 2×GOMAXPROCS)")
	flag.Parse()
	slog.SetDefault(obs.NewLogger(os.Stderr, "workerd", slog.LevelInfo))

	if *host == "" {
		h, err := os.Hostname()
		if err != nil {
			log.Fatalf("workerd: no -host and no hostname: %v", err)
		}
		*host = h
	}

	o := orb.New(orb.Options{Name: "workerd", WorkerPool: *workers})
	defer o.Shutdown()
	ad, err := o.NewAdapter(*addr)
	if err != nil {
		log.Fatalf("workerd: %v", err)
	}
	ref := ad.Activate("worker", ft.Wrap(rosen.NewWorker(nil)))

	var ann *rosen.Announcement
	if *nsSIOR != "" {
		nsRef, err := orb.RefFromString(*nsSIOR)
		if err != nil {
			log.Fatalf("workerd: -ns: %v", err)
		}
		nsc := naming.NewClient(o, nsRef)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		ann, err = rosen.AnnounceWorker(ctx, nsc, ref, *host, *ttl)
		cancel()
		if err != nil {
			log.Fatalf("workerd: announce: %v", err)
		}
		log.Printf("workerd: announced %s on %q (lease %v)", ref.Addr, *host, *ttl)
	}

	fmt.Println(ref.ToString())
	if *obsAddr != "" {
		_, ln, err := o.ObserveOpts("workerd", *obsAddr, obs.ObserverOptions{})
		if err != nil {
			log.Fatalf("workerd: obs endpoint: %v", err)
		}
		defer ln.Close()
		fmt.Println("OBS:" + ln.Addr().String())
	}
	log.Printf("workerd: serving on %s as host %q", ad.Addr(), *host)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if ann != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		ann.Stop(ctx)
		cancel()
	}
}
