// Command winnerd runs the Winner resource management system.
//
// In -role system (default) it serves the central system manager and
// prints its stringified reference. In -role node it runs a node manager:
// it samples this machine's /proc/loadavg periodically and reports to the
// system manager given by -manager.
//
//	winnerd -role system -addr 127.0.0.1:9002
//	winnerd -role node -manager "$(cat winner.ref)" -host node07 -period 2s
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/orb"
	"repro/internal/winner"
)

func main() {
	role := flag.String("role", "system", "system | node")
	addr := flag.String("addr", "127.0.0.1:9002", "listen address (system role)")
	managerRef := flag.String("manager", "", "SIOR of the system manager (node role)")
	host := flag.String("host", "", "host name to report (node role; default: hostname)")
	speed := flag.Float64("speed", 1, "relative CPU speed of this host (node role)")
	period := flag.Duration("period", 2*time.Second, "sampling period (node role)")
	refFile := flag.String("ref-file", "", "write the system manager SIOR to this file")
	maxAge := flag.Duration("max-sample-age", 0, "treat load samples older than this as stale (system role; 0: never)")
	obsAddr := flag.String("obs", "", "serve /metrics, /healthz and /debug endpoints on this address (system role; empty: disabled)")
	dumpDir := flag.String("dump-dir", "", "write anomaly flight-recorder dumps here (system role; empty: disabled)")
	workers := flag.Int("workers", 0, "dispatch worker pool size (0: 2×GOMAXPROCS)")
	readBatch := flag.Int("read-batch", 0, "max request frames per connection read-loop wakeup (0: 32)")
	replyCoalesce := flag.Duration("reply-coalesce", 0, "server reply-coalescing window (0: disabled)")
	qosClasses := flag.String("qos-classes", "", "per-class dispatch weights, e.g. critical:16,normal:4,batch:1")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate in req/s (0: unlimited)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant token-bucket burst (0: rate)")
	degradeHigh := flag.Float64("degrade-high", 0, "load score that steps the runtime one degradation mode down (0: controller disabled)")
	degradeLow := flag.Float64("degrade-low", 0.5, "load score that steps the runtime one degradation mode back up")
	degradeTrend := flag.Float64("degrade-trend", 0, "effective-speed fraction of a host's peak below which it counts as degrading (system role; 0: membership view disabled)")
	degradeSamples := flag.Int("degrade-samples", 3, "consecutive below-trend samples before a Degrading membership event fires (system role)")
	flag.Parse()
	slog.SetDefault(obs.NewLogger(os.Stderr, "winnerd", slog.LevelInfo))

	weights, err := orb.ParseClassWeights(*qosClasses)
	if err != nil {
		log.Fatalf("winnerd: -qos-classes: %v", err)
	}
	tuning := orb.Options{WorkerPool: *workers, ReadBatch: *readBatch, ReplyCoalesceWindow: *replyCoalesce,
		QoS: orb.QoSOptions{Weights: weights, TenantRate: *tenantRate, TenantBurst: *tenantBurst}}

	switch *role {
	case "system":
		runSystem(*addr, *refFile, *obsAddr, *dumpDir, *maxAge, tuning,
			*degradeHigh, *degradeLow, *degradeTrend, *degradeSamples)
	case "node":
		runNode(*managerRef, *host, *speed, *period)
	default:
		log.Fatalf("winnerd: unknown role %q", *role)
	}
}

func runSystem(addr, refFile, obsAddr, dumpDir string, maxAge time.Duration, tuning orb.Options, degradeHigh, degradeLow, degradeTrend float64, degradeSamples int) {
	tuning.Name = "winnerd"
	o := orb.New(tuning)
	defer o.Shutdown()
	if degradeHigh > 0 {
		stop := o.StartDegradeController(orb.DegradeConfig{High: degradeHigh, Low: degradeLow})
		defer stop()
		log.Printf("winnerd: adaptive degradation on (high %.2f, low %.2f)", degradeHigh, degradeLow)
	}
	ad, err := o.NewAdapter(addr)
	if err != nil {
		log.Fatalf("winnerd: %v", err)
	}
	mgr := winner.NewManager()
	if maxAge > 0 {
		mgr.SetMaxSampleAge(maxAge, time.Now)
		log.Printf("winnerd: samples stale after %v", maxAge)
	}
	// With -degrade-trend the system manager maintains a first-class
	// cluster membership view: every load report feeds it, hosts whose
	// effective speed collapses below the trend threshold emit Degrading
	// events, and Forget reports deaths — all visible on /metrics.
	var membership *cluster.Membership
	if degradeTrend > 0 {
		membership = cluster.NewMembership(
			cluster.WithDegradeTrend(degradeTrend),
			cluster.WithDegradeSamples(degradeSamples),
			cluster.WithMembershipLogger(slog.Default()))
		mgr.SetMembershipSink(membership.Feed("winner"))
		log.Printf("winnerd: membership view on (degrade trend %.2f over %d samples)",
			degradeTrend, degradeSamples)
	}
	ref := ad.Activate(winner.DefaultKey, winner.NewServant(mgr))
	sior := ref.ToString()
	fmt.Println(sior)
	if obsAddr != "" {
		ob, ln, err := o.ObserveOpts("winnerd", obsAddr,
			obs.ObserverOptions{Anomaly: obs.AnomalyOptions{DumpDir: dumpDir}})
		if err != nil {
			log.Fatalf("winnerd: obs endpoint: %v", err)
		}
		defer ln.Close()
		ob.Health.Register("winner", func() error {
			if stale := len(mgr.StaleHosts()); stale > 0 {
				return fmt.Errorf("%d hosts with stale load samples", stale)
			}
			return nil
		})
		ob.Registry.NewGaugeFunc("winner_hosts",
			"Hosts currently known to the system manager.",
			func() float64 { return float64(mgr.HostCount()) })
		ob.Registry.NewGaugeFunc("winner_stale_hosts",
			"Known hosts whose newest load sample exceeds -max-sample-age.",
			func() float64 { return float64(len(mgr.StaleHosts())) })
		if membership != nil {
			membership.ExportMetrics(ob.Registry)
		}
		fmt.Println("OBS:" + ln.Addr().String())
		log.Printf("winnerd: observability on http://%s/metrics", ln.Addr())
	}
	if refFile != "" {
		if err := os.WriteFile(refFile, []byte(sior+"\n"), 0o644); err != nil {
			log.Fatalf("winnerd: write ref file: %v", err)
		}
	}
	log.Printf("winnerd: system manager on %s", ad.Addr())
	wait()
}

func runNode(managerRef, host string, speed float64, period time.Duration) {
	if managerRef == "" {
		log.Fatal("winnerd: -role node requires -manager")
	}
	ref, err := orb.RefFromString(managerRef)
	if err != nil {
		log.Fatalf("winnerd: bad -manager reference: %v", err)
	}
	o := orb.New(orb.Options{Name: "winnerd-node"})
	defer o.Shutdown()
	client := winner.NewClient(o, ref)
	src := &winner.ProcLoadSource{Host: host, Speed: speed}
	nm := winner.NewNodeManager(src, client, period)
	nm.Start()
	defer nm.Stop()
	log.Printf("winnerd: node manager reporting %q every %v", src.Sample().Host, period)
	wait()
}

func wait() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
