// Command checkpointd runs the checkpoint storage service.
//
// With -dir it persists checkpoints to disk (surviving restarts — the
// persistence the paper lists as future work); without it, checkpoints
// live in memory like the paper's prototype.
//
//	checkpointd -addr 127.0.0.1:9003 -dir /var/lib/checkpoints
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/ft"
	"repro/internal/orb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9003", "listen address")
	dir := flag.String("dir", "", "persist checkpoints to this directory (empty: in-memory)")
	refFile := flag.String("ref-file", "", "write the service SIOR to this file")
	flag.Parse()

	var store ft.Store
	if *dir != "" {
		ds, err := ft.NewDiskStore(*dir)
		if err != nil {
			log.Fatalf("checkpointd: %v", err)
		}
		store = ds
		log.Printf("checkpointd: disk store in %s", *dir)
	} else {
		store = ft.NewMemStore()
		log.Print("checkpointd: in-memory store")
	}

	o := orb.New(orb.Options{Name: "checkpointd"})
	defer o.Shutdown()
	ad, err := o.NewAdapter(*addr)
	if err != nil {
		log.Fatalf("checkpointd: %v", err)
	}
	ref := ad.Activate(ft.StoreDefaultKey, ft.NewStoreServant(store))
	sior := ref.ToString()
	fmt.Println(sior)
	if *refFile != "" {
		if err := os.WriteFile(*refFile, []byte(sior+"\n"), 0o644); err != nil {
			log.Fatalf("checkpointd: write ref file: %v", err)
		}
	}
	log.Printf("checkpointd: serving on %s", ad.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
