// Command checkpointd runs the checkpoint storage service.
//
// With -dir it persists checkpoints to disk (surviving restarts — the
// persistence the paper lists as future work); without it, checkpoints
// live in memory like the paper's prototype.
//
//	checkpointd -addr 127.0.0.1:9003 -dir /var/lib/checkpoints
//
// With -peers it serves a quorum front-end instead: reads and writes fan
// out to the local store plus each peer replica (write-all/ack-majority,
// read-newest-epoch, background read-repair), so a client talking to this
// daemon survives any single replica failure. Peers are given as SIORs,
// or as @file references to SIOR files written by -ref-file:
//
//	checkpointd -addr :9003 -dir /data/a -ref-file /tmp/a.ref \
//	    -peers @/tmp/b.ref,@/tmp/c.ref
//
// Peers must be plain replicas (no -peers of their own), otherwise
// quorum calls would recurse through front-ends.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/ft"
	"repro/internal/obs"
	"repro/internal/orb"
)

// parsePeers turns the -peers value into object references. Each item is
// a SIOR, or @path naming a file whose first line is one.
func parsePeers(spec string) ([]orb.ObjectRef, error) {
	var refs []orb.ObjectRef
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if strings.HasPrefix(item, "@") {
			raw, err := os.ReadFile(item[1:])
			if err != nil {
				return nil, fmt.Errorf("peer ref file: %w", err)
			}
			item = strings.TrimSpace(strings.SplitN(string(raw), "\n", 2)[0])
		}
		ref, err := orb.RefFromString(item)
		if err != nil {
			return nil, fmt.Errorf("peer ref %q: %w", item, err)
		}
		refs = append(refs, ref)
	}
	return refs, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9003", "listen address")
	dir := flag.String("dir", "", "persist checkpoints to this directory (empty: in-memory)")
	refFile := flag.String("ref-file", "", "write the service SIOR to this file")
	peers := flag.String("peers", "", "comma-separated peer replica SIORs (or @file) to form a quorum front-end")
	obsAddr := flag.String("obs", "", "serve /metrics, /healthz and /debug endpoints on this address (empty: disabled)")
	dumpDir := flag.String("dump-dir", "", "write anomaly flight-recorder dumps here (empty: disabled)")
	workers := flag.Int("workers", 0, "dispatch worker pool size (0: 2×GOMAXPROCS)")
	readBatch := flag.Int("read-batch", 0, "max request frames per connection read-loop wakeup (0: 32)")
	replyCoalesce := flag.Duration("reply-coalesce", 0, "server reply-coalescing window (0: disabled)")
	qosClasses := flag.String("qos-classes", "", "per-class dispatch weights, e.g. critical:16,normal:4,batch:1")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate in req/s (0: unlimited)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant token-bucket burst (0: rate)")
	degradeHigh := flag.Float64("degrade-high", 0, "load score that steps the runtime one degradation mode down (0: controller disabled)")
	degradeLow := flag.Float64("degrade-low", 0.5, "load score that steps the runtime one degradation mode back up")
	flag.Parse()
	slog.SetDefault(obs.NewLogger(os.Stderr, "checkpointd", slog.LevelInfo))

	weights, err := orb.ParseClassWeights(*qosClasses)
	if err != nil {
		log.Fatalf("checkpointd: -qos-classes: %v", err)
	}

	var local ft.Store
	if *dir != "" {
		ds, err := ft.NewDiskStore(*dir)
		if err != nil {
			log.Fatalf("checkpointd: %v", err)
		}
		local = ds
		log.Printf("checkpointd: disk store in %s", *dir)
	} else {
		local = ft.NewMemStore()
		log.Print("checkpointd: in-memory store")
	}

	o := orb.New(orb.Options{Name: "checkpointd",
		WorkerPool: *workers, ReadBatch: *readBatch, ReplyCoalesceWindow: *replyCoalesce,
		QoS: orb.QoSOptions{Weights: weights, TenantRate: *tenantRate, TenantBurst: *tenantBurst}})
	defer o.Shutdown()
	if *degradeHigh > 0 {
		stop := o.StartDegradeController(orb.DegradeConfig{High: *degradeHigh, Low: *degradeLow})
		defer stop()
		log.Printf("checkpointd: adaptive degradation on (high %.2f, low %.2f)", *degradeHigh, *degradeLow)
	}

	store := local
	if *peers != "" {
		peerRefs, err := parsePeers(*peers)
		if err != nil {
			log.Fatalf("checkpointd: %v", err)
		}
		replicas := []ft.Store{local}
		for _, ref := range peerRefs {
			replicas = append(replicas, ft.NewStoreClient(o, ref))
		}
		rs, err := ft.NewReplicatedStore(replicas)
		if err != nil {
			log.Fatalf("checkpointd: %v", err)
		}
		store = rs
		log.Printf("checkpointd: quorum front-end over %d replicas (majority %d)", rs.Replicas(), rs.Quorum())
	}

	ad, err := o.NewAdapter(*addr)
	if err != nil {
		log.Fatalf("checkpointd: %v", err)
	}
	ref := ad.Activate(ft.StoreDefaultKey, ft.NewStoreServant(store))
	sior := ref.ToString()
	fmt.Println(sior)
	if *obsAddr != "" {
		ob, ln, err := o.ObserveOpts("checkpointd", *obsAddr,
			obs.ObserverOptions{Anomaly: obs.AnomalyOptions{DumpDir: *dumpDir}})
		if err != nil {
			log.Fatalf("checkpointd: obs endpoint: %v", err)
		}
		defer ln.Close()
		// The store probe exercises the same path Get/Put ride (quorum
		// front-end included), so /readyz flips when a majority is lost.
		ob.Health.Register("store", func() error {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, err := store.Keys(ctx)
			return err
		})
		fmt.Println("OBS:" + ln.Addr().String())
		log.Printf("checkpointd: observability on http://%s/metrics", ln.Addr())
	}
	if *refFile != "" {
		if err := os.WriteFile(*refFile, []byte(sior+"\n"), 0o644); err != nil {
			log.Fatalf("checkpointd: write ref file: %v", err)
		}
	}
	log.Printf("checkpointd: serving on %s", ad.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}
